// Property tests of the paper's analytical guarantees (Section IV):
// Theorem 1's incentive bound and Corollary 1's pairwise fairness, over
// randomized network configurations.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "alloc/policies.hpp"
#include "sim/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace fairshare::sim {
namespace {

struct NetConfig {
  std::uint64_t seed;
  std::size_t n;
};

Simulator random_network(const NetConfig& cfg, double gamma_min,
                         double gamma_max) {
  SplitMix64 rng(cfg.seed);
  std::vector<PeerSetup> peers;
  for (std::size_t i = 0; i < cfg.n; ++i) {
    PeerSetup p;
    p.upload_kbps = 100.0 + static_cast<double>(rng.next_below(900));
    const double gamma =
        gamma_min + (gamma_max - gamma_min) * rng.next_double();
    p.demand = std::make_shared<BernoulliDemand>(gamma, rng.next());
    p.policy =
        std::make_shared<alloc::ProportionalContributionPolicy>(cfg.n, 1.0);
    peers.push_back(std::move(p));
  }
  return Simulator(std::move(peers));
}

class IncentiveProperty : public ::testing::TestWithParam<NetConfig> {};

TEST_P(IncentiveProperty, Theorem1BoundHoldsForEveryUser) {
  Simulator sim = random_network(GetParam(), 0.2, 0.9);
  sim.run(30000);
  for (std::size_t i = 0; i < sim.n(); ++i) {
    const IncentiveBound b = incentive_bound(sim, i);
    // Inequality (12) is asymptotic; allow 3% slack for finite horizon.
    EXPECT_GE(b.average_download, b.bound * 0.97)
        << "peer " << i << ": avg " << b.average_download << " vs bound "
        << b.bound;
  }
}

TEST_P(IncentiveProperty, JoiningBeatsIsolation) {
  // The incentive to join: every user receives at least its isolated
  // average (Theorem 1's first term).
  Simulator sim = random_network(GetParam(), 0.2, 0.9);
  sim.run(30000);
  for (std::size_t i = 0; i < sim.n(); ++i) {
    EXPECT_GE(incentive_bound(sim, i).average_download,
              sim.isolated_average(i) * 0.97)
        << "peer " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, IncentiveProperty,
                         ::testing::Values(NetConfig{1, 3}, NetConfig{2, 5},
                                           NetConfig{3, 8}, NetConfig{4, 10},
                                           NetConfig{5, 4}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  "n" + std::to_string(info.param.n);
                         });

class SaturatedFairness : public ::testing::TestWithParam<NetConfig> {};

TEST_P(SaturatedFairness, Corollary1PairwiseFairness) {
  // gamma -> 1: long-run pairwise exchanged bandwidth must equalize.
  Simulator sim = random_network(GetParam(), 1.0, 1.0);
  sim.run(20000);
  EXPECT_LT(pairwise_unfairness(sim), 0.05);
}

TEST_P(SaturatedFairness, DownloadConvergesToOwnUpload) {
  // Figure 5: in saturation every user's download converges to its own
  // upload rate (conservation + pairwise fairness).
  Simulator sim = random_network(GetParam(), 1.0, 1.0);
  sim.run(20000);
  const std::uint64_t t0 = 15000;
  for (std::size_t i = 0; i < sim.n(); ++i) {
    const double tail = sim.download(i).mean(t0, sim.now());
    // Within 10% of mu_i in the measured tail.
    const double mu = sim.offered(i).at(0);
    EXPECT_NEAR(tail, mu, 0.10 * mu) << "peer " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, SaturatedFairness,
                         ::testing::Values(NetConfig{11, 3}, NetConfig{12, 5},
                                           NetConfig{13, 10}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  "n" + std::to_string(info.param.n);
                         });

TEST(FairnessAdversaries, FreeRiderGainsAlmostNothing) {
  // A free rider (uploads nothing) in a saturated network should see its
  // download decay to ~0 while honest peers keep exchanging.
  const std::size_t n = 5;
  std::vector<PeerSetup> peers;
  for (std::size_t i = 0; i < n; ++i) {
    PeerSetup p;
    p.upload_kbps = 500;
    p.demand = std::make_shared<AlwaysDemand>();
    if (i == 0)
      p.policy = std::make_shared<alloc::FreeRiderPolicy>();
    else
      p.policy =
          std::make_shared<alloc::ProportionalContributionPolicy>(n, 1.0);
    peers.push_back(std::move(p));
  }
  Simulator sim(std::move(peers));
  sim.run(20000);
  const double rider_tail = sim.download(0).mean(15000, sim.now());
  const double honest_tail = sim.download(1).mean(15000, sim.now());
  EXPECT_LT(rider_tail, 0.05 * honest_tail);
  // The rider uploads nothing, so the honest peers simply exchange their
  // own capacity: ~500 each (no bonus pool exists to redistribute).
  EXPECT_NEAR(honest_tail, 500.0, 25.0);
}

TEST(FairnessAdversaries, Theorem1HoldsUnderCoalition) {
  // Peers 1 and 2 collude (serve only each other); user 0's guarantee
  // must still hold: at least its isolated bandwidth.
  const std::size_t n = 4;
  std::vector<PeerSetup> peers;
  for (std::size_t i = 0; i < n; ++i) {
    PeerSetup p;
    p.upload_kbps = 400;
    p.demand = std::make_shared<BernoulliDemand>(0.6, 100 + i);
    if (i == 1 || i == 2)
      p.policy = std::make_shared<alloc::CoalitionPolicy>(
          std::vector<std::size_t>{1, 2});
    else
      p.policy =
          std::make_shared<alloc::ProportionalContributionPolicy>(n, 1.0);
    peers.push_back(std::move(p));
  }
  Simulator sim(std::move(peers));
  sim.run(30000);
  EXPECT_GE(incentive_bound(sim, 0).average_download,
            sim.isolated_average(0) * 0.97);
}

TEST(FairnessAdversaries, LiarGainsNothingUnderEquationTwo) {
  // Declared capacity is ignored by Equation (2) — a liar's download in
  // the saturated regime still converges to its true upload.
  const std::size_t n = 4;
  std::vector<PeerSetup> peers;
  for (std::size_t i = 0; i < n; ++i) {
    PeerSetup p;
    p.upload_kbps = 300;
    p.declared_kbps = (i == 0) ? 30000.0 : 300.0;  // peer 0 lies 100x
    p.demand = std::make_shared<AlwaysDemand>();
    p.policy =
        std::make_shared<alloc::ProportionalContributionPolicy>(n, 1.0);
    peers.push_back(std::move(p));
  }
  Simulator sim(std::move(peers));
  sim.run(10000);
  EXPECT_NEAR(sim.download(0).mean(8000, sim.now()), 300.0, 15.0);
}

TEST(FairnessAdversaries, LiarProfitsUnderEquationThree) {
  // The same lie under the Equation (3) baseline steals bandwidth: this is
  // the motivating flaw (Section IV-B).
  const std::size_t n = 4;
  std::vector<PeerSetup> peers;
  for (std::size_t i = 0; i < n; ++i) {
    PeerSetup p;
    p.upload_kbps = 300;
    p.declared_kbps = (i == 0) ? 30000.0 : 300.0;
    p.demand = std::make_shared<AlwaysDemand>();
    p.policy = std::make_shared<alloc::DeclaredProportionalPolicy>();
    peers.push_back(std::move(p));
  }
  Simulator sim(std::move(peers));
  sim.run(10000);
  const double liar = sim.download(0).mean(8000, sim.now());
  const double honest = sim.download(1).mean(8000, sim.now());
  EXPECT_GT(liar, 3.0 * honest);
}

TEST(FairnessDynamics, DecayingLedgerAdaptsFasterToCapacityDrop) {
  // Ablation A2: after a capacity drop, the decayed ledger re-equalizes
  // the victim's download faster than the cumulative ledger (the paper's
  // "slow dynamics" remark).
  auto build = [](bool decaying) {
    const std::size_t n = 6;
    std::vector<PeerSetup> peers;
    for (std::size_t i = 0; i < n; ++i) {
      PeerSetup p;
      p.upload_kbps = 1024;
      if (i == 0)
        p.capacity_schedule = [](std::uint64_t t) {
          return t < 4000 ? 1024.0 : 512.0;
        };
      p.demand = std::make_shared<AlwaysDemand>();
      if (decaying)
        p.policy = std::make_shared<alloc::DecayingContributionPolicy>(
            n, 0.995, 1.0);
      else
        p.policy =
            std::make_shared<alloc::ProportionalContributionPolicy>(n, 1.0);
      peers.push_back(std::move(p));
    }
    return Simulator(std::move(peers));
  };

  Simulator cumulative = build(false);
  cumulative.run(6000);
  Simulator decaying = build(true);
  decaying.run(6000);

  // Shortly after the drop the decayed system should be closer to the new
  // fair point (512) for peer 0 than the cumulative system is.
  const double cum_gap =
      std::abs(cumulative.download(0).mean(5500, 6000) - 512.0);
  const double dec_gap =
      std::abs(decaying.download(0).mean(5500, 6000) - 512.0);
  EXPECT_LT(dec_gap, cum_gap);
}

TEST(Equation3Analysis, JensenLowerBoundHoldsAndIsNearTight) {
  // Section IV-B derives E[download_j] >= gamma_j mu_j sum mu_i /
  // (mu_j + sum_{l!=j} gamma_l mu_l) for the declared-proportional scheme.
  // Simulate it with truthful declarations and verify bound + tightness.
  SplitMix64 rng(77);
  for (int config = 0; config < 4; ++config) {
    const std::size_t n = 6 + 2 * static_cast<std::size_t>(config);
    std::vector<double> mu(n), gamma(n);
    std::vector<PeerSetup> peers;
    for (std::size_t i = 0; i < n; ++i) {
      mu[i] = 100.0 + static_cast<double>(rng.next_below(600));
      gamma[i] = 0.3 + 0.6 * rng.next_double();
      PeerSetup p;
      p.upload_kbps = mu[i];
      p.demand = std::make_shared<BernoulliDemand>(gamma[i], rng.next());
      p.policy = std::make_shared<alloc::DeclaredProportionalPolicy>();
      peers.push_back(std::move(p));
    }
    Simulator sim(std::move(peers));
    sim.run(40000);
    for (std::size_t j = 0; j < n; ++j) {
      const double bound = eq3_download_lower_bound(mu, gamma, j);
      const double measured = sim.average_download(j);
      EXPECT_GE(measured, 0.95 * bound)
          << "config " << config << " peer " << j;
      // Jensen is not wildly loose here: measured within 35% above bound.
      EXPECT_LE(measured, 1.35 * bound)
          << "config " << config << " peer " << j;
    }
  }
}

TEST(Equation3Analysis, BoundExceedsIsolationUnlessSaturated) {
  // The Section IV-B observation: the bound is "strictly larger than
  // gamma_j mu_j unless gamma_l = 1 for all other users l".
  const std::vector<double> mu{200, 300, 400};
  const std::vector<double> gamma_mixed{0.5, 0.7, 0.9};
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_GT(eq3_download_lower_bound(mu, gamma_mixed, j),
              gamma_mixed[j] * mu[j]);
  const std::vector<double> gamma_sat{0.5, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(eq3_download_lower_bound(mu, gamma_sat, 0),
                   0.5 * mu[0] * (200 + 300 + 400) / (200 + 300 + 400));
}

}  // namespace
}  // namespace fairshare::sim
