// Property sweep over every DemandProcess implementation: the engine
// contract is that requests(slot) is a deterministic function of
// (construction parameters, slot), so re-querying is idempotent and two
// identically-constructed instances always agree — even when their query
// orders differ, up to each class's documented ordering contract
// (RandomBlocksDemand draws periods monotonically; TraceDemand slots are
// non-decreasing).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/demand.hpp"
#include "sim/workload.hpp"

namespace {

using namespace fairshare;

// ------------------------------------------------------------- Bernoulli

// Regression for the ignore-slot bug: requests() used to advance a shared
// RNG stream on every call, so the answer depended on HOW MANY times the
// process had been queried, not on the slot.  Out-of-order and repeated
// queries must now match an in-order scan exactly.
TEST(BernoulliDemand, OutOfOrderQueriesMatchInOrderScan) {
  const std::uint64_t kSlots = 512;
  sim::BernoulliDemand in_order(0.4, 99);
  std::vector<bool> expected;
  expected.reserve(kSlots);
  for (std::uint64_t t = 0; t < kSlots; ++t)
    expected.push_back(in_order.requests(t));

  sim::BernoulliDemand scrambled(0.4, 99);
  // Descending, with duplicates interleaved.
  for (std::uint64_t t = kSlots; t-- > 0;) {
    EXPECT_EQ(scrambled.requests(t), expected[t]) << "slot " << t;
    EXPECT_EQ(scrambled.requests(t), expected[t]) << "re-query slot " << t;
  }
  // A strided pass over the same instance still agrees.
  for (std::uint64_t t = 0; t < kSlots; t += 7)
    EXPECT_EQ(scrambled.requests(t), expected[t]) << "strided slot " << t;
}

TEST(BernoulliDemand, MarginalRateStillTracksGamma) {
  // Determinism must not have collapsed the distribution.
  const std::uint64_t kSlots = 20000;
  sim::BernoulliDemand demand(0.3, 7);
  std::uint64_t hits = 0;
  for (std::uint64_t t = 0; t < kSlots; ++t)
    if (demand.requests(t)) ++hits;
  const double rate = static_cast<double>(hits) / kSlots;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(BernoulliDemand, SeedsDecorrelate) {
  sim::BernoulliDemand a(0.5, 1);
  sim::BernoulliDemand b(0.5, 2);
  std::uint64_t differ = 0;
  for (std::uint64_t t = 0; t < 1000; ++t)
    if (a.requests(t) != b.requests(t)) ++differ;
  // Independent fair coins disagree about half the time.
  EXPECT_GT(differ, 350u);
  EXPECT_LT(differ, 650u);
}

// ------------------------------------------------- generic determinism

// Same construction + same query sequence -> same answers, and an
// interleaved double-query (idempotence probe) never changes the stream.
template <typename Make>
void expect_replayable(Make make, const std::vector<std::uint64_t>& slots) {
  auto a = make();
  auto b = make();
  for (std::uint64_t slot : slots) {
    const bool first = a->requests(slot);
    EXPECT_EQ(first, a->requests(slot)) << "idempotence at slot " << slot;
    EXPECT_EQ(first, b->requests(slot)) << "replay at slot " << slot;
  }
}

std::vector<std::uint64_t> ascending(std::uint64_t n) {
  std::vector<std::uint64_t> slots(n);
  for (std::uint64_t t = 0; t < n; ++t) slots[t] = t;
  return slots;
}

TEST(DemandProperties, AllProcessesReplayDeterministically) {
  const std::vector<std::uint64_t> slots = ascending(256);
  expect_replayable(
      [] { return std::make_unique<sim::AlwaysDemand>(); }, slots);
  expect_replayable(
      [] { return std::make_unique<sim::NeverDemand>(); }, slots);
  expect_replayable(
      [] { return std::make_unique<sim::BernoulliDemand>(0.25, 11); }, slots);
  expect_replayable(
      [] {
        return std::make_unique<sim::IntervalDemand>(
            std::vector<sim::IntervalDemand::Interval>{{4, 9}, {40, 64}});
      },
      slots);
  expect_replayable(
      [] { return std::make_unique<sim::RandomBlocksDemand>(4, 8, 3, 5); },
      slots);
}

TEST(DemandProperties, BernoulliFullyRandomAccess) {
  // Bernoulli documents random access: any slot, any order.
  std::vector<std::uint64_t> slots = {500, 2, 2, 77, 0, 1000000, 77, 3};
  expect_replayable(
      [] { return std::make_unique<sim::BernoulliDemand>(0.6, 21); }, slots);
}

// --------------------------------------------------------------- edges

TEST(IntervalDemand, HalfOpenBoundaries) {
  sim::IntervalDemand demand({{10, 20}});
  EXPECT_FALSE(demand.requests(9));
  EXPECT_TRUE(demand.requests(10));   // begin is inclusive
  EXPECT_TRUE(demand.requests(19));   // end-1 is the last active slot
  EXPECT_FALSE(demand.requests(20));  // end is exclusive
  EXPECT_FALSE(demand.requests(21));
}

TEST(IntervalDemand, EmptyAndOverlappingIntervals) {
  sim::IntervalDemand empty({});
  for (std::uint64_t t = 0; t < 16; ++t) EXPECT_FALSE(empty.requests(t));

  sim::IntervalDemand overlap({{0, 8}, {4, 12}});
  for (std::uint64_t t = 0; t < 12; ++t) EXPECT_TRUE(overlap.requests(t));
  EXPECT_FALSE(overlap.requests(12));
}

TEST(RandomBlocksDemand, ActiveBlockCountExactPerPeriod) {
  const std::uint64_t block_slots = 5;
  const std::uint64_t blocks = 8;
  const std::uint64_t active = 3;
  sim::RandomBlocksDemand demand(block_slots, blocks, active, 17);
  for (std::uint64_t period = 0; period < 6; ++period) {
    std::uint64_t active_slots = 0;
    const std::uint64_t base = period * block_slots * blocks;
    for (std::uint64_t s = 0; s < block_slots * blocks; ++s)
      if (demand.requests(base + s)) ++active_slots;
    EXPECT_EQ(active_slots, active * block_slots) << "period " << period;
  }
}

TEST(RandomBlocksDemand, WithinPeriodQueriesAreOrderFree) {
  // The monotonicity contract is on PERIODS; inside one period any slot
  // order (including re-queries) must agree with the forward scan.
  sim::RandomBlocksDemand forward(3, 6, 2, 23);
  std::vector<bool> expected;
  for (std::uint64_t s = 0; s < 3 * 6; ++s)
    expected.push_back(forward.requests(s));
  sim::RandomBlocksDemand backward(3, 6, 2, 23);
  for (std::uint64_t s = 3 * 6; s-- > 0;) {
    EXPECT_EQ(backward.requests(s), expected[s]) << "slot " << s;
    EXPECT_EQ(backward.requests(s), expected[s]) << "re-query " << s;
  }
}

TEST(RandomBlocksDemand, PeriodSkipsAreAllowed) {
  // Jumping forward whole periods (e.g. an engine fast-forwarding through
  // idle stretches) must not trip the monotone-draw bookkeeping.
  sim::RandomBlocksDemand demand(2, 4, 2, 31);
  (void)demand.requests(0);          // period 0
  (void)demand.requests(3 * 2 * 4);  // period 3, skipping 1-2
  std::uint64_t active_slots = 0;
  const std::uint64_t base = 3 * 2 * 4;
  for (std::uint64_t s = 0; s < 2 * 4; ++s)
    if (demand.requests(base + s)) ++active_slots;
  EXPECT_EQ(active_slots, 2u * 2u);
}

TEST(TraceDemand, ReplaysDeterministicallyUnderSameDeliveries) {
  sim::WorkloadTrace trace;
  trace.add({1, 1, 300});
  trace.add({1, 4, 200});
  trace.normalize();
  sim::TraceDemand a(trace, 1);
  sim::TraceDemand b(trace, 1);
  for (std::uint64_t slot = 0; slot < 8; ++slot) {
    const bool first = a.requests(slot);
    EXPECT_EQ(first, a.requests(slot)) << "idempotence at slot " << slot;
    EXPECT_EQ(first, b.requests(slot)) << "replay at slot " << slot;
    EXPECT_DOUBLE_EQ(a.deliver(120.0), b.deliver(120.0)) << "slot " << slot;
  }
  EXPECT_TRUE(a.done());
  EXPECT_TRUE(b.done());
}

}  // namespace
