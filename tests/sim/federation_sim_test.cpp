// FederationSim: the simulation twin of the federated-swarm fold.  The
// scenario under test is the paper's Eq. (2) incentive stretched across
// origins: service earned at shard A must buy allocation priority at
// shard B once the ledgers gossip — and must NOT without gossip.
#include <gtest/gtest.h>

#include <vector>

#include "sim/federation.hpp"

namespace fairshare::sim {
namespace {

// Two shards, two users.  Phase 1: user 0 is served heavily by shard 0
// while user 1 idles.  Phase 2: both users request from shard 1, which
// never served either before.
FederationConfig two_shard_config(std::uint64_t gossip_period) {
  FederationConfig config;
  config.shards = 2;
  config.users = 2;
  config.shard_capacity_kbps = 1000.0;
  config.gossip_period_slots = gossip_period;
  return config;
}

void run_phase1(FederationSim& sim, std::uint64_t slots) {
  // requesting[shard][user]: user 0 downloads (and thereby, in the
  // paper's symmetric barter, contributes) through shard 0 only.
  const std::vector<std::vector<std::uint8_t>> phase1 = {{1, 0}, {0, 0}};
  for (std::uint64_t t = 0; t < slots; ++t) sim.step(phase1);
}

TEST(FederationSim, GossipCarriesContributionAcrossShards) {
  FederationSim sim(two_shard_config(/*gossip_period=*/4));
  run_phase1(sim, 50);
  EXPECT_GT(sim.local_total(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(sim.local_total(1, 0), 0.0);  // shard 1 never served
  sim.gossip_now();
  // Shard 1's replica now knows user 0's standing at shard 0.
  EXPECT_DOUBLE_EQ(sim.known_remote(1, 0), sim.local_total(0, 0));

  // Phase 2: both users contend at shard 1.  A couple of slots let the
  // fold reach the policy ledger.
  const std::vector<std::vector<std::uint8_t>> phase2 = {{0, 0}, {1, 1}};
  for (int t = 0; t < 3; ++t) sim.step(phase2);

  // Eq. (2): shares split proportionally to the ledger.  User 0 arrives
  // with ~50 slots of gossiped history against user 1's epsilon, so user
  // 0 must take the overwhelming share of shard 1's capacity.
  const double share0 = sim.last_share(1, 0);
  const double share1 = sim.last_share(1, 1);
  EXPECT_GT(share0, 0.0);
  EXPECT_GT(share1, 0.0);  // epsilon keeps newcomers alive
  EXPECT_GT(share0 / (share0 + share1), 0.95);
}

TEST(FederationSim, NoGossipMeansNoCrossShardCredit) {
  // Negative control: identical run with gossip disabled — shard 1 sees
  // only epsilon for both users and splits its capacity evenly.
  FederationSim sim(two_shard_config(/*gossip_period=*/0));
  run_phase1(sim, 50);
  EXPECT_DOUBLE_EQ(sim.known_remote(1, 0), 0.0);

  const std::vector<std::vector<std::uint8_t>> phase2 = {{0, 0}, {1, 1}};
  for (int t = 0; t < 3; ++t) sim.step(phase2);
  const double share0 = sim.last_share(1, 0);
  const double share1 = sim.last_share(1, 1);
  // Both start from the same epsilon and receive identical service at
  // shard 1, so their shares stay within a whisker of 50/50.
  EXPECT_NEAR(share0 / (share0 + share1), 0.5, 0.05);
}

TEST(FederationSim, GossipedShareMatchesSingleServerWithinTolerance) {
  // The acceptance bound the live e2e test also asserts: the share a
  // gossiped-in user gets at a fresh shard is within ±15% of what they
  // would get from a single server holding the whole history locally.
  FederationSim federated(two_shard_config(/*gossip_period=*/1));
  run_phase1(federated, 50);
  federated.gossip_now();

  FederationConfig solo_config = two_shard_config(/*gossip_period=*/0);
  solo_config.shards = 1;
  FederationSim solo(solo_config);
  const std::vector<std::vector<std::uint8_t>> solo_phase1 = {{1, 0}};
  for (int t = 0; t < 50; ++t) solo.step(solo_phase1);

  const std::vector<std::vector<std::uint8_t>> fed_phase2 = {{0, 0}, {1, 1}};
  const std::vector<std::vector<std::uint8_t>> solo_phase2 = {{1, 1}};
  for (int t = 0; t < 3; ++t) {
    federated.step(fed_phase2);
    solo.step(solo_phase2);
  }
  const double fed_frac =
      federated.last_share(1, 0) /
      (federated.last_share(1, 0) + federated.last_share(1, 1));
  const double solo_frac = solo.last_share(0, 0) /
                           (solo.last_share(0, 0) + solo.last_share(0, 1));
  EXPECT_NEAR(fed_frac, solo_frac, 0.15 * solo_frac);
}

TEST(FederationSim, RepeatedGossipIsIdempotentInTheLedger) {
  // Re-delivering the same gossip must not inflate anyone's standing:
  // the fold applies deltas against a monotone total.
  FederationSim sim(two_shard_config(/*gossip_period=*/0));
  run_phase1(sim, 20);
  sim.gossip_now();
  const std::vector<std::vector<std::uint8_t>> idle = {{0, 0}, {0, 0}};
  sim.step(idle);  // one tick folds the remote delta
  const double after_first = sim.policy_ledger(1, 0);
  for (int i = 0; i < 5; ++i) {
    sim.gossip_now();  // same totals again
    sim.step(idle);
  }
  EXPECT_DOUBLE_EQ(sim.policy_ledger(1, 0), after_first);
}

}  // namespace
}  // namespace fairshare::sim
