// Chord ring: responsibility, routing, churn, and the content locator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "dht/chord.hpp"
#include "sim/rng.hpp"

namespace fairshare::dht {
namespace {

ChordRing make_ring(std::size_t n, std::uint64_t seed) {
  ChordRing ring;
  sim::SplitMix64 rng(seed);
  while (ring.size() < n) ring.join(rng.next());
  return ring;
}

TEST(RingHash, DeterministicAndSpread) {
  EXPECT_EQ(ring_hash("abc"), ring_hash("abc"));
  EXPECT_NE(ring_hash("abc"), ring_hash("abd"));
  EXPECT_NE(ring_hash_u64(1), ring_hash_u64(2));
  EXPECT_NE(ring_hash_u64(1, 0), ring_hash_u64(1, 1));  // salt matters
}

TEST(InInterval, HalfOpenSemantics) {
  EXPECT_TRUE(in_interval(5, 3, 7));
  EXPECT_TRUE(in_interval(7, 3, 7));   // closed at `to`
  EXPECT_FALSE(in_interval(3, 3, 7));  // open at `from`
  EXPECT_FALSE(in_interval(8, 3, 7));
}

TEST(InInterval, WrappedIntervals) {
  const RingId big = ~RingId{0} - 5;
  EXPECT_TRUE(in_interval(2, big, 10));
  EXPECT_TRUE(in_interval(big + 1, big, 10));
  EXPECT_FALSE(in_interval(big - 1, big, 10));
  EXPECT_TRUE(in_interval(12345, 77, 77));  // (a, a] is the whole ring
}

TEST(ChordRing, JoinLeaveBasics) {
  ChordRing ring;
  EXPECT_TRUE(ring.join(10));
  EXPECT_FALSE(ring.join(10));  // duplicate
  EXPECT_TRUE(ring.join(20));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_TRUE(ring.leave(10));
  EXPECT_FALSE(ring.leave(10));
  EXPECT_EQ(ring.size(), 1u);
}

TEST(ChordRing, SuccessorIsRingLowerBoundWithWrap) {
  ChordRing ring;
  for (RingId id : {100u, 200u, 300u}) ring.join(id);
  EXPECT_EQ(ring.successor(50), 100u);
  EXPECT_EQ(ring.successor(100), 100u);  // exact hit
  EXPECT_EQ(ring.successor(101), 200u);
  EXPECT_EQ(ring.successor(301), 100u);  // wraps
}

TEST(ChordRing, SingleNodeOwnsEverything) {
  ChordRing ring;
  ring.join(42);
  for (RingId key : {RingId{0}, RingId{41}, RingId{42}, RingId{43}, ~RingId{0}})
    EXPECT_EQ(ring.successor(key), 42u);
  EXPECT_EQ(ring.lookup(12345, 42).owner, 42u);
}

TEST(ChordRing, LookupAgreesWithSuccessorEverywhere) {
  const ChordRing ring = make_ring(64, 1);
  sim::SplitMix64 rng(2);
  const auto nodes = ring.nodes();
  for (int trial = 0; trial < 500; ++trial) {
    const RingId key = rng.next();
    const RingId start = nodes[rng.next_below(nodes.size())];
    EXPECT_EQ(ring.lookup(key, start).owner, ring.successor(key));
  }
}

TEST(ChordRing, LookupHopsAreLogarithmic) {
  const std::size_t n = 256;
  const ChordRing ring = make_ring(n, 3);
  sim::SplitMix64 rng(4);
  const auto nodes = ring.nodes();
  double total_hops = 0;
  const int trials = 400;
  std::size_t worst = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const auto r =
        ring.lookup(rng.next(), nodes[rng.next_below(nodes.size())]);
    total_hops += static_cast<double>(r.hops);
    worst = std::max(worst, r.hops);
  }
  const double avg = total_hops / trials;
  const double log_n = std::log2(static_cast<double>(n));
  EXPECT_LE(avg, log_n);          // Chord averages ~0.5 log2 n
  EXPECT_LE(worst, 3 * log_n);    // and tails stay logarithmic
}

TEST(ChordRing, FingersPointAtSuccessors) {
  const ChordRing ring = make_ring(32, 5);
  for (RingId node : ring.nodes()) {
    const auto fingers = ring.fingers(node);
    ASSERT_EQ(fingers.size(), ChordRing::kFingers);
    for (std::size_t i = 0; i < fingers.size(); ++i)
      EXPECT_EQ(fingers[i], ring.successor(node + (RingId{1} << i)));
  }
}

TEST(ChordRing, SuccessorListWrapsAndExcludesSelf) {
  ChordRing ring;
  for (RingId id : {10u, 20u, 30u}) ring.join(id);
  const auto list = ring.successor_list(30);
  ASSERT_EQ(list.size(), 2u);  // only 2 other nodes exist
  EXPECT_EQ(list[0], 10u);
  EXPECT_EQ(list[1], 20u);
}

TEST(ChordRing, LookupsSurviveChurn) {
  ChordRing ring = make_ring(64, 6);
  sim::SplitMix64 rng(7);
  for (int round = 0; round < 20; ++round) {
    // Churn: one join, one leave.
    ring.join(rng.next());
    const auto nodes = ring.nodes();
    ring.leave(nodes[rng.next_below(nodes.size())]);
    const auto survivors = ring.nodes();
    for (int probe = 0; probe < 20; ++probe) {
      const RingId key = rng.next();
      const RingId start = survivors[rng.next_below(survivors.size())];
      EXPECT_EQ(ring.lookup(key, start).owner, ring.successor(key));
    }
  }
}

// ------------------------------------------------------------- route_step

TEST(RouteStep, SingleStepMatchesLookupOwner) {
  // Driving route_step hop by hop (as a networked client does) must land
  // on exactly the owner lookup() computes, in the same number of hops.
  const ChordRing ring = make_ring(64, 20);
  sim::SplitMix64 rng(21);
  const auto nodes = ring.nodes();
  for (int trial = 0; trial < 300; ++trial) {
    const RingId key = rng.next();
    RingId at = nodes[rng.next_below(nodes.size())];
    const auto reference = ring.lookup(key, at);
    std::size_t hops = 0;
    for (;;) {
      const RouteStep step = ring.route_step(key, at);
      if (step.done) {
        EXPECT_EQ(step.next, reference.owner);
        break;
      }
      at = step.next;
      ++hops;
      ASSERT_LE(hops, nodes.size()) << "routing loop";
    }
    EXPECT_EQ(hops, reference.hops);
  }
}

TEST(RouteStep, DoneImmediatelyWhenSelfPrecedesOwner) {
  ChordRing ring;
  for (RingId id : {100u, 200u, 300u}) ring.join(id);
  const RouteStep step = ring.route_step(150, 100);
  EXPECT_TRUE(step.done);
  EXPECT_EQ(step.next, 200u);
}

TEST(RouteStep, ForwardsToClosestPrecedingFinger) {
  const ChordRing ring = make_ring(128, 22);
  sim::SplitMix64 rng(23);
  const auto nodes = ring.nodes();
  for (int trial = 0; trial < 200; ++trial) {
    const RingId key = rng.next();
    const RingId self = nodes[rng.next_below(nodes.size())];
    const RouteStep step = ring.route_step(key, self);
    if (step.done) continue;
    // The forward target is a real node strictly inside (self, key).
    EXPECT_TRUE(ring.contains(step.next));
    EXPECT_NE(step.next, self);
    EXPECT_TRUE(in_interval(step.next, self, key - 1));
  }
}

// -------------------------------------------------------- churn properties

TEST(ChordRing, RandomizedJoinLeaveInterleavings) {
  // Property: under any interleaving of joins and leaves, every lookup
  // from every live node lands on successor(key) — the live owner.
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    ChordRing ring = make_ring(16, seed);
    sim::SplitMix64 rng(seed ^ 0xc0ffee);
    const std::vector<RingId> initial = ring.nodes();
    std::set<RingId> alive(initial.begin(), initial.end());
    for (int event = 0; event < 120; ++event) {
      const bool grow = alive.size() < 4 ||
                        (alive.size() < 40 && rng.next_below(2) == 0);
      if (grow) {
        const RingId id = rng.next();
        if (ring.join(id)) alive.insert(id);
      } else {
        auto it = alive.begin();
        std::advance(it, rng.next_below(alive.size()));
        ring.leave(*it);
        alive.erase(it);
      }
      const auto nodes = ring.nodes();
      ASSERT_EQ(nodes.size(), alive.size());
      for (int probe = 0; probe < 5; ++probe) {
        const RingId key = rng.next();
        const RingId start = nodes[rng.next_below(nodes.size())];
        const RingId owner = ring.lookup(key, start).owner;
        EXPECT_EQ(owner, ring.successor(key));
        EXPECT_TRUE(alive.count(owner)) << "lookup landed on a dead node";
      }
    }
  }
}

TEST(ChordRing, HopsStayLogarithmicAcrossChurn) {
  ChordRing ring = make_ring(256, 30);
  sim::SplitMix64 rng(31);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 8; ++i) ring.join(rng.next());
    for (int i = 0; i < 8; ++i) {
      const auto nodes = ring.nodes();
      ring.leave(nodes[rng.next_below(nodes.size())]);
    }
    const auto nodes = ring.nodes();
    const double log_n = std::log2(static_cast<double>(nodes.size()));
    double total = 0;
    std::size_t worst = 0;
    const int trials = 100;
    for (int t = 0; t < trials; ++t) {
      const auto r =
          ring.lookup(rng.next(), nodes[rng.next_below(nodes.size())]);
      total += static_cast<double>(r.hops);
      worst = std::max(worst, r.hops);
    }
    EXPECT_LE(total / trials, log_n);
    EXPECT_LE(worst, 3 * log_n);
  }
}

TEST(ChordRing, NegativeControlStaleViewMissesMovedKeys) {
  // Seeded negative control: querying a STALE ring snapshot after churn
  // must disagree with the live ring for some keys — proving the churn
  // tests above genuinely exercise re-routing rather than passing
  // vacuously.
  const ChordRing stale = make_ring(64, 40);
  ChordRing live = stale;
  sim::SplitMix64 rng(41);
  for (int i = 0; i < 16; ++i) {
    live.join(rng.next());
    const auto nodes = live.nodes();
    live.leave(nodes[rng.next_below(nodes.size())]);
  }
  int moved = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const RingId key = rng.next();
    if (stale.successor(key) != live.successor(key)) ++moved;
  }
  EXPECT_GT(moved, 0) << "churn moved no keys; churn tests prove nothing";
}

// ---------------------------------------------------------- ContentLocator

TEST(ContentLocator, AnnounceAndLocate) {
  ContentLocator locator(make_ring(16, 8));
  locator.announce(1001, 3);
  locator.announce(1001, 7);
  locator.announce(2002, 5);
  const auto start = locator.ring().nodes().front();
  const auto r1 = locator.locate(1001, start);
  EXPECT_EQ(r1.peers, (std::vector<std::uint64_t>{3, 7}));
  const auto r2 = locator.locate(2002, start);
  EXPECT_EQ(r2.peers, (std::vector<std::uint64_t>{5}));
}

TEST(ContentLocator, UnknownFileYieldsNoPeers) {
  ContentLocator locator(make_ring(16, 9));
  const auto r = locator.locate(4242, locator.ring().nodes().front());
  EXPECT_TRUE(r.peers.empty());
}

TEST(ContentLocator, WithdrawRemovesPeer) {
  ContentLocator locator(make_ring(8, 10));
  locator.announce(1, 100);
  locator.announce(1, 200);
  locator.withdraw(1, 100);
  const auto r = locator.locate(1, locator.ring().nodes().front());
  EXPECT_EQ(r.peers, (std::vector<std::uint64_t>{200}));
  locator.withdraw(1, 200);
  EXPECT_TRUE(locator.locate(1, locator.ring().nodes().front()).peers.empty());
}

TEST(ContentLocator, RecordsSurvivePrimaryLeave) {
  ContentLocator locator(make_ring(16, 11));
  locator.announce(777, 42);
  // Find and remove the primary holder of the record.
  const RingId key = ring_hash_u64(777, 0x66696c65);
  const RingId primary = locator.ring().successor(key);
  locator.handle_leave(primary);
  const auto survivors = locator.ring().nodes();
  ASSERT_FALSE(survivors.empty());
  const auto r = locator.locate(777, survivors.front());
  EXPECT_EQ(r.peers, (std::vector<std::uint64_t>{42}));
}

TEST(ContentLocator, SurvivesSustainedChurn) {
  ContentLocator locator(make_ring(32, 12));
  for (std::uint64_t f = 0; f < 20; ++f) locator.announce(f, 1000 + f);
  sim::SplitMix64 rng(13);
  for (int round = 0; round < 10; ++round) {
    const auto nodes = locator.ring().nodes();
    locator.handle_leave(nodes[rng.next_below(nodes.size())]);
    locator.handle_join(rng.next());
    // After every churn event all 20 records remain locatable.
    const auto survivors = locator.ring().nodes();
    for (std::uint64_t f = 0; f < 20; ++f) {
      const auto r =
          locator.locate(f, survivors[rng.next_below(survivors.size())]);
      ASSERT_EQ(r.peers.size(), 1u) << "file " << f << " round " << round;
      EXPECT_EQ(r.peers[0], 1000 + f);
    }
  }
}

}  // namespace
}  // namespace fairshare::dht
