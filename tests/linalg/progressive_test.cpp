// Incremental rank tracking and the progressive decoder core.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/progressive.hpp"
#include "sim/rng.hpp"

namespace fairshare::linalg {
namespace {

using gf::FieldId;

std::vector<std::uint64_t> random_symbols(FieldId field, std::size_t n,
                                          sim::SplitMix64& rng) {
  const auto& f = gf::field_view(field);
  std::vector<std::uint64_t> out(n);
  for (auto& v : out) v = rng.next() & (f.order - 1);
  return out;
}

class IncrementalRankTest : public ::testing::TestWithParam<FieldId> {};

TEST_P(IncrementalRankTest, AcceptsIndependentRows) {
  IncrementalRank tracker(GetParam(), 4);
  // Unit vectors are independent.
  for (std::size_t i = 0; i < 4; ++i) {
    std::vector<std::uint64_t> row(4, 0);
    row[i] = 1;
    EXPECT_TRUE(tracker.add_row(row)) << i;
    EXPECT_EQ(tracker.rank(), i + 1);
  }
  EXPECT_TRUE(tracker.full());
}

TEST_P(IncrementalRankTest, RejectsZeroRow) {
  IncrementalRank tracker(GetParam(), 3);
  EXPECT_FALSE(tracker.add_row(std::vector<std::uint64_t>{0, 0, 0}));
  EXPECT_EQ(tracker.rank(), 0u);
}

TEST_P(IncrementalRankTest, RejectsDuplicateRow) {
  IncrementalRank tracker(GetParam(), 3);
  const std::vector<std::uint64_t> row{1, 2, 3};
  EXPECT_TRUE(tracker.add_row(row));
  EXPECT_FALSE(tracker.add_row(row));
  EXPECT_EQ(tracker.rank(), 1u);
}

TEST_P(IncrementalRankTest, RejectsScaledRow) {
  const auto& f = gf::field_view(GetParam());
  IncrementalRank tracker(GetParam(), 3);
  std::vector<std::uint64_t> row{1, 2, 3};
  EXPECT_TRUE(tracker.add_row(row));
  std::vector<std::uint64_t> scaled(3);
  const std::uint64_t c = f.order - 1;  // nonzero scalar
  for (int i = 0; i < 3; ++i) scaled[i] = f.mul(c, row[i]);
  EXPECT_FALSE(tracker.add_row(scaled));
}

TEST_P(IncrementalRankTest, RejectsLinearCombination) {
  const auto& f = gf::field_view(GetParam());
  IncrementalRank tracker(GetParam(), 4);
  const auto r1 = std::vector<std::uint64_t>{1, 0, 5 & (f.order - 1), 1};
  const auto r2 = std::vector<std::uint64_t>{0, 1, 1, 7 & (f.order - 1)};
  ASSERT_TRUE(tracker.add_row(r1));
  ASSERT_TRUE(tracker.add_row(r2));
  std::vector<std::uint64_t> combo(4);
  for (int i = 0; i < 4; ++i) combo[i] = r1[i] ^ f.mul(3 & (f.order - 1), r2[i]);
  EXPECT_FALSE(tracker.add_row(combo));
  EXPECT_EQ(tracker.rank(), 2u);
}

TEST_P(IncrementalRankTest, AgreesWithBatchRankOnRandomRows) {
  sim::SplitMix64 rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t cols = 6;
    const std::size_t rows = 9;
    IncrementalRank tracker(GetParam(), cols);
    Matrix m(GetParam(), rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      const auto row = random_symbols(GetParam(), cols, rng);
      for (std::size_t c = 0; c < cols; ++c) m.set(r, c, row[c]);
      tracker.add_row(row);
    }
    EXPECT_EQ(tracker.rank(), rank(m));
  }
}

// ------------------------------------------------------ ProgressiveSolver

class ProgressiveSolverTest : public ::testing::TestWithParam<FieldId> {
 protected:
  const gf::FieldView& f() const { return gf::field_view(GetParam()); }

  // Build a random system: k chunks of m symbols, coefficient rows, and
  // the coded payloads y_i = sum_j b_ij x_j.
  struct Instance {
    std::size_t k, m;
    Matrix chunks;  // k x m
    Matrix coeffs;  // rows x k
    Matrix coded;   // rows x m
  };

  Instance make_instance(std::size_t k, std::size_t m, std::size_t rows,
                         sim::SplitMix64& rng) {
    Instance inst{k, m, Matrix(GetParam(), k, m), Matrix(GetParam(), rows, k),
                  Matrix(GetParam(), 0, 0)};
    for (std::size_t r = 0; r < k; ++r)
      for (std::size_t c = 0; c < m; ++c)
        inst.chunks.set(r, c, rng.next() & (f().order - 1));
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < k; ++c)
        inst.coeffs.set(r, c, rng.next() & (f().order - 1));
    inst.coded = inst.coeffs.mul(inst.chunks);
    return inst;
  }
};

TEST_P(ProgressiveSolverTest, RecoversChunksFromRandomRows) {
  sim::SplitMix64 rng(31);
  const std::size_t k = 6, m = 40;
  for (int trial = 0; trial < 5; ++trial) {
    auto inst = make_instance(k, m, k + 4, rng);
    ProgressiveSolver solver(GetParam(), k, m);
    std::size_t fed = 0;
    for (std::size_t r = 0; r < inst.coeffs.rows() && !solver.complete();
         ++r) {
      solver.add_row(inst.coeffs.row(r), inst.coded.row(r));
      ++fed;
    }
    if (!solver.complete()) continue;  // rank-deficient draw (rare)
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(std::memcmp(solver.chunk(i), inst.chunks.row(i),
                            f().row_bytes(m)),
                0)
          << "chunk " << i << " after " << fed << " rows";
    }
  }
}

TEST_P(ProgressiveSolverTest, ExactlyKIndependentRowsSuffice) {
  sim::SplitMix64 rng(32);
  const std::size_t k = 5, m = 16;
  auto inst = make_instance(k, m, 3 * k, rng);
  ProgressiveSolver solver(GetParam(), k, m);
  std::size_t innovative = 0;
  for (std::size_t r = 0; r < inst.coeffs.rows() && !solver.complete(); ++r) {
    if (solver.add_row(inst.coeffs.row(r), inst.coded.row(r))) ++innovative;
  }
  if (solver.complete()) EXPECT_EQ(innovative, k);
}

TEST_P(ProgressiveSolverTest, DuplicateRowsAreNotInnovative) {
  sim::SplitMix64 rng(33);
  const std::size_t k = 4, m = 8;
  auto inst = make_instance(k, m, k, rng);
  ProgressiveSolver solver(GetParam(), k, m);
  ASSERT_TRUE(solver.add_row(inst.coeffs.row(0), inst.coded.row(0)));
  EXPECT_FALSE(solver.add_row(inst.coeffs.row(0), inst.coded.row(0)));
  EXPECT_EQ(solver.rank(), 1u);
}

TEST_P(ProgressiveSolverTest, UnitRowsDecodeImmediately) {
  // Feeding the identity as coefficients means payloads ARE the chunks.
  sim::SplitMix64 rng(34);
  const std::size_t k = 3, m = 10;
  Matrix chunks(GetParam(), k, m);
  for (std::size_t r = 0; r < k; ++r)
    for (std::size_t c = 0; c < m; ++c)
      chunks.set(r, c, rng.next() & (f().order - 1));
  ProgressiveSolver solver(GetParam(), k, m);
  for (std::size_t r = 0; r < k; ++r) {
    std::vector<std::uint64_t> e(k, 0);
    e[r] = 1;
    EXPECT_TRUE(solver.add_row(e, chunks.row(r)));
  }
  ASSERT_TRUE(solver.complete());
  for (std::size_t i = 0; i < k; ++i)
    EXPECT_EQ(
        std::memcmp(solver.chunk(i), chunks.row(i), f().row_bytes(m)), 0);
}

TEST_P(ProgressiveSolverTest, OrderOfArrivalDoesNotMatter) {
  sim::SplitMix64 rng(35);
  const std::size_t k = 5, m = 12;
  auto inst = make_instance(k, m, k, rng);
  if (rank(inst.coeffs) != k) return;  // rare unlucky draw

  ProgressiveSolver forward(GetParam(), k, m);
  for (std::size_t r = 0; r < k; ++r)
    forward.add_row(inst.coeffs.row(r), inst.coded.row(r));
  ProgressiveSolver backward(GetParam(), k, m);
  for (std::size_t r = k; r-- > 0;)
    backward.add_row(inst.coeffs.row(r), inst.coded.row(r));

  ASSERT_TRUE(forward.complete());
  ASSERT_TRUE(backward.complete());
  for (std::size_t i = 0; i < k; ++i)
    EXPECT_EQ(std::memcmp(forward.chunk(i), backward.chunk(i),
                          f().row_bytes(m)),
              0);
}

TEST_P(ProgressiveSolverTest, KEqualsOne) {
  sim::SplitMix64 rng(36);
  const std::size_t m = 6;
  Matrix chunk(GetParam(), 1, m);
  for (std::size_t c = 0; c < m; ++c)
    chunk.set(0, c, rng.next() & (f().order - 1));
  ProgressiveSolver solver(GetParam(), 1, m);
  // Scaled copy: payload = c * chunk, coefficient = c.
  std::uint64_t c = 0;
  while (c == 0) c = rng.next() & (f().order - 1);
  std::vector<std::byte> payload(f().row_bytes(m));
  std::memcpy(payload.data(), chunk.row(0), payload.size());
  f().scale(payload.data(), c, m);
  EXPECT_TRUE(
      solver.add_row(std::vector<std::uint64_t>{c}, payload.data()));
  ASSERT_TRUE(solver.complete());
  EXPECT_EQ(std::memcmp(solver.chunk(0), chunk.row(0), f().row_bytes(m)), 0);
}

INSTANTIATE_TEST_SUITE_P(AllFields, IncrementalRankTest,
                         ::testing::Values(FieldId::gf2_4, FieldId::gf2_8,
                                           FieldId::gf2_16, FieldId::gf2_32));
INSTANTIATE_TEST_SUITE_P(AllFields, ProgressiveSolverTest,
                         ::testing::Values(FieldId::gf2_4, FieldId::gf2_8,
                                           FieldId::gf2_16, FieldId::gf2_32));

}  // namespace
}  // namespace fairshare::linalg
