// Dense matrix operations over GF(2^p).
#include <gtest/gtest.h>

#include "linalg/matrix.hpp"
#include "sim/rng.hpp"

namespace fairshare::linalg {
namespace {

using gf::FieldId;

Matrix random_matrix(FieldId field, std::size_t rows, std::size_t cols,
                     sim::SplitMix64& rng) {
  const auto& f = gf::field_view(field);
  Matrix m(field, rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      m.set(r, c, rng.next() & (f.order - 1));
  return m;
}

class MatrixTest : public ::testing::TestWithParam<FieldId> {};

TEST_P(MatrixTest, IdentityActsAsNeutralElement) {
  sim::SplitMix64 rng(1);
  const Matrix a = random_matrix(GetParam(), 6, 6, rng);
  const Matrix i = Matrix::identity(GetParam(), 6);
  EXPECT_EQ(a.mul(i), a);
  EXPECT_EQ(i.mul(a), a);
}

TEST_P(MatrixTest, IdentityHasFullRank) {
  EXPECT_EQ(rank(Matrix::identity(GetParam(), 10)), 10u);
}

TEST_P(MatrixTest, ZeroMatrixHasRankZero) {
  EXPECT_EQ(rank(Matrix(GetParam(), 5, 5)), 0u);
}

TEST_P(MatrixTest, DuplicatedRowsReduceRank) {
  sim::SplitMix64 rng(2);
  Matrix m = random_matrix(GetParam(), 4, 6, rng);
  // Force row 3 == row 0.
  for (std::size_t c = 0; c < 6; ++c) m.set(3, c, m.at(0, c));
  EXPECT_LE(rank(m), 3u);
}

TEST_P(MatrixTest, RandomSquareMatricesAreAlmostSurelyInvertible) {
  // Over GF(2^16)/GF(2^32) a random k x k matrix is invertible w.p.
  // ~ prod (1 - q^-i) > 0.9999; for GF(2^4) the failure rate is visible,
  // so only assert that invert() agrees with rank().
  sim::SplitMix64 rng(3);
  int invertible = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix m = random_matrix(GetParam(), 8, 8, rng);
    const auto inv = invert(m);
    EXPECT_EQ(inv.has_value(), rank(m) == 8u);
    if (inv) {
      ++invertible;
      EXPECT_EQ(m.mul(*inv), Matrix::identity(GetParam(), 8));
      EXPECT_EQ(inv->mul(m), Matrix::identity(GetParam(), 8));
    }
  }
  EXPECT_GE(invertible, 15);  // even GF(2^4) succeeds ~93% of the time
}

TEST_P(MatrixTest, SingularMatrixHasNoInverse) {
  sim::SplitMix64 rng(4);
  Matrix m = random_matrix(GetParam(), 5, 5, rng);
  for (std::size_t c = 0; c < 5; ++c) m.set(4, c, m.at(2, c));  // duplicate
  EXPECT_FALSE(invert(m).has_value());
}

TEST_P(MatrixTest, SolveRecoversUnknowns) {
  sim::SplitMix64 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix b = random_matrix(GetParam(), 6, 6, rng);
    if (rank(b) != 6) continue;
    const Matrix x = random_matrix(GetParam(), 6, 17, rng);
    const Matrix y = b.mul(x);
    const auto solved = solve(b, y);
    ASSERT_TRUE(solved.has_value());
    EXPECT_EQ(*solved, x);
  }
}

TEST_P(MatrixTest, SolveRejectsSingularSystems) {
  const Matrix b(GetParam(), 4, 4);  // zero matrix
  const Matrix y(GetParam(), 4, 3);
  EXPECT_FALSE(solve(b, y).has_value());
}

TEST_P(MatrixTest, MulShapesCompose) {
  sim::SplitMix64 rng(6);
  const Matrix a = random_matrix(GetParam(), 3, 5, rng);
  const Matrix b = random_matrix(GetParam(), 5, 2, rng);
  const Matrix c = a.mul(b);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 2u);
}

TEST_P(MatrixTest, MulMatchesManualDotProduct) {
  sim::SplitMix64 rng(7);
  const auto& f = gf::field_view(GetParam());
  const Matrix a = random_matrix(GetParam(), 4, 4, rng);
  const Matrix b = random_matrix(GetParam(), 4, 4, rng);
  const Matrix c = a.mul(b);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      std::uint64_t acc = 0;
      for (std::size_t l = 0; l < 4; ++l)
        acc ^= f.mul(a.at(i, l), b.at(l, j));
      EXPECT_EQ(c.at(i, j), acc);
    }
  }
}

TEST_P(MatrixTest, SwapRows) {
  sim::SplitMix64 rng(8);
  Matrix m = random_matrix(GetParam(), 3, 7, rng);
  const Matrix before = m;
  m.swap_rows(0, 2);
  for (std::size_t c = 0; c < 7; ++c) {
    EXPECT_EQ(m.at(0, c), before.at(2, c));
    EXPECT_EQ(m.at(2, c), before.at(0, c));
    EXPECT_EQ(m.at(1, c), before.at(1, c));
  }
  m.swap_rows(1, 1);  // self-swap is a no-op
  EXPECT_EQ(m.at(1, 3), before.at(1, 3));
}

TEST_P(MatrixTest, RankOfWideAndTallMatrices) {
  sim::SplitMix64 rng(9);
  const Matrix wide = random_matrix(GetParam(), 3, 10, rng);
  EXPECT_LE(rank(wide), 3u);
  const Matrix tall = random_matrix(GetParam(), 10, 3, rng);
  EXPECT_LE(rank(tall), 3u);
}

INSTANTIATE_TEST_SUITE_P(AllFields, MatrixTest,
                         ::testing::Values(FieldId::gf2_4, FieldId::gf2_8,
                                           FieldId::gf2_16, FieldId::gf2_32),
                         [](const auto& info) {
                           switch (info.param) {
                             case FieldId::gf2_4: return "GF16";
                             case FieldId::gf2_8: return "GF256";
                             case FieldId::gf2_16: return "GF65536";
                             default: return "GF2pow32";
                           }
                         });

}  // namespace
}  // namespace fairshare::linalg
