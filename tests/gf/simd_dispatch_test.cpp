// Differential suite for the row-kernel dispatch: whatever field_view()
// dispatched to (avx2 / ssse3 / window64, or scalar when forced) must be
// bit-for-bit identical to scalar_field_view() on whole buffers — including
// the multiplied padding nibble of an odd-length GF(2^4) row and rows that
// start at unaligned byte offsets.  CI runs this binary twice: once with
// native dispatch and once under FAIRSHARE_FORCE_SCALAR_KERNELS=1.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "gf/row_ops.hpp"
#include "linalg/parallel_ops.hpp"
#include "sim/rng.hpp"
#include "util/thread_pool.hpp"

namespace fairshare::gf {
namespace {

// Symbol counts straddling every vector-width boundary (16/32-byte SIMD
// steps, 8-byte window64 words) plus odd lengths for GF(2^4) packing.
constexpr std::size_t kLengths[] = {1,  2,  3,  7,   8,   15,  16,  17,
                                    31, 32, 33, 63,  64,  65,  127, 128,
                                    129, 255, 256, 257, 1000, 1001, 4096, 4099};

// Byte offsets applied independently to dst and src: SIMD kernels use
// unaligned loads, so a row may start anywhere.
constexpr std::size_t kOffsets[] = {0, 1, 3, 5};

std::vector<std::byte> random_bytes(std::size_t n, sim::SplitMix64& rng) {
  std::vector<std::byte> buf(n);
  for (auto& b : buf) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return buf;
}

class SimdDispatchTest : public ::testing::TestWithParam<FieldId> {
 protected:
  const FieldView& dispatched() const { return field_view(GetParam()); }
  const FieldView& scalar() const { return scalar_field_view(GetParam()); }

  void diff_axpy(std::size_t n, std::uint64_t c, std::size_t dst_off,
                 std::size_t src_off, sim::SplitMix64& rng) {
    const std::size_t nb = scalar().row_bytes(n);
    const auto src = random_bytes(nb + src_off, rng);
    auto want = random_bytes(nb + dst_off, rng);
    auto got = want;
    scalar().axpy(want.data() + dst_off, src.data() + src_off, c, n);
    dispatched().axpy(got.data() + dst_off, src.data() + src_off, c, n);
    ASSERT_EQ(want, got) << "axpy n=" << n << " c=" << c
                         << " dst_off=" << dst_off << " src_off=" << src_off
                         << " kernel=" << dispatched().kernel;
  }

  void diff_scale(std::size_t n, std::uint64_t c, std::size_t off,
                  sim::SplitMix64& rng) {
    const std::size_t nb = scalar().row_bytes(n);
    auto want = random_bytes(nb + off, rng);
    auto got = want;
    scalar().scale(want.data() + off, c, n);
    dispatched().scale(got.data() + off, c, n);
    ASSERT_EQ(want, got) << "scale n=" << n << " c=" << c << " off=" << off
                         << " kernel=" << dispatched().kernel;
  }

  std::uint64_t random_scalar(sim::SplitMix64& rng) const {
    return rng.next() & (scalar().order - 1);
  }
};

TEST_P(SimdDispatchTest, ReportsKernelVariant) {
  EXPECT_STREQ(scalar().kernel, "scalar");
  ASSERT_NE(dispatched().kernel, nullptr);
  if (scalar_kernels_forced()) {
    EXPECT_STREQ(dispatched().kernel, "scalar");
  }
  // Scalar ops other than axpy/scale are shared verbatim.
  EXPECT_EQ(dispatched().mul, scalar().mul);
  EXPECT_EQ(dispatched().row_bytes, scalar().row_bytes);
}

TEST_P(SimdDispatchTest, WideFieldTierMatchesFeaturesAndCap) {
  // The wide fields must land on the best tier the (possibly capped)
  // feature set allows; lower tiers are reached via FAIRSHARE_KERNEL_CAP
  // (the ctest variants gf_simd_dispatch_cap_*).
  if (GetParam() != FieldId::gf2_16 && GetParam() != FieldId::gf2_32)
    GTEST_SKIP();
  if (scalar_kernels_forced()) GTEST_SKIP();
  const CpuFeatures feat = cpu_features();
  const char* cap = kernel_tier_cap();
  const std::string kernel = dispatched().kernel;
  if (cap == nullptr && feat.gfni && feat.avx512f && feat.avx512bw) {
    EXPECT_EQ(kernel, "gfni512");
  } else if ((cap == nullptr || std::string(cap) == "avx2") && feat.avx2) {
    EXPECT_EQ(kernel, "avx2");
  } else {
    EXPECT_EQ(kernel, "window64");
  }
}

TEST_P(SimdDispatchTest, AxpyMatchesScalarAcrossLengths) {
  sim::SplitMix64 rng(0xD1FF + static_cast<std::uint64_t>(GetParam()));
  for (const std::size_t n : kLengths) {
    diff_axpy(n, 0, 0, 0, rng);
    diff_axpy(n, 1, 0, 0, rng);
    for (int t = 0; t < 4; ++t) diff_axpy(n, random_scalar(rng), 0, 0, rng);
  }
}

TEST_P(SimdDispatchTest, AxpyMatchesScalarUnaligned) {
  sim::SplitMix64 rng(0xA11 + static_cast<std::uint64_t>(GetParam()));
  for (const std::size_t dst_off : kOffsets)
    for (const std::size_t src_off : kOffsets) {
      diff_axpy(257, 1, dst_off, src_off, rng);
      diff_axpy(257, random_scalar(rng), dst_off, src_off, rng);
      diff_axpy(4099, random_scalar(rng), dst_off, src_off, rng);
    }
}

TEST_P(SimdDispatchTest, ScaleMatchesScalarAcrossLengths) {
  sim::SplitMix64 rng(0x5CA1E + static_cast<std::uint64_t>(GetParam()));
  for (const std::size_t n : kLengths) {
    diff_scale(n, 0, 0, rng);  // annihilation fast path
    diff_scale(n, 1, 0, rng);
    for (int t = 0; t < 4; ++t) diff_scale(n, random_scalar(rng), 0, rng);
    for (const std::size_t off : kOffsets)
      diff_scale(n, random_scalar(rng), off, rng);
  }
}

TEST_P(SimdDispatchTest, AxpyAllowsAliasedDstSrc) {
  // The FieldView contract allows dst == src; both paths must agree there
  // too (the row doubles, i.e. scales by c+1 ... in characteristic 2,
  // dst = dst ^ c*dst = (1^c)*dst).
  sim::SplitMix64 rng(0xA1A5 + static_cast<std::uint64_t>(GetParam()));
  for (const std::size_t n : {33u, 257u, 4099u}) {
    const std::size_t nb = scalar().row_bytes(n);
    auto want = random_bytes(nb, rng);
    auto got = want;
    const std::uint64_t c = random_scalar(rng);
    scalar().axpy(want.data(), want.data(), c, n);
    dispatched().axpy(got.data(), got.data(), c, n);
    ASSERT_EQ(want, got) << "aliased axpy n=" << n << " c=" << c;
  }
}

TEST_P(SimdDispatchTest, Gf4TrailingNibbleMatches) {
  if (GetParam() != FieldId::gf2_4) GTEST_SKIP();
  // Odd n leaves the final byte's high nibble as padding; the kernels
  // multiply it anyway (whole-byte tables), and scalar and SIMD must do so
  // identically — compare raw buffers, not just the n live symbols.
  sim::SplitMix64 rng(0x0DD);
  for (const std::size_t n : {1u, 3u, 31u, 33u, 255u, 4097u}) {
    ASSERT_EQ(n % 2, 1u);
    diff_axpy(n, random_scalar(rng), 0, 0, rng);
    diff_scale(n, random_scalar(rng), 0, rng);
  }
}

TEST_P(SimdDispatchTest, ParallelSegmentsMatchSerial) {
  // parallel_axpy/scale must stay exact under the retuned SIMD-aligned
  // segmentation, including lengths around the fan-out threshold and odd
  // GF(2^4) tails.
  util::ThreadPool pool(3);
  sim::SplitMix64 rng(0x9A9 + static_cast<std::uint64_t>(GetParam()));
  const auto& f = dispatched();
  for (const std::size_t n :
       {16383u, 16384u, 32768u, 32769u, 49157u, 100001u}) {
    const std::size_t nb = f.row_bytes(n);
    const auto src = random_bytes(nb, rng);
    auto want = random_bytes(nb, rng);
    auto got = want;
    const std::uint64_t c = random_scalar(rng);
    f.axpy(want.data(), src.data(), c, n);
    linalg::parallel_axpy(f, got.data(), src.data(), c, n, &pool);
    ASSERT_EQ(want, got) << "parallel_axpy n=" << n;

    auto wrow = random_bytes(nb, rng);
    auto grow = wrow;
    f.scale(wrow.data(), c, n);
    linalg::parallel_scale(f, grow.data(), c, n, &pool);
    ASSERT_EQ(wrow, grow) << "parallel_scale n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFields, SimdDispatchTest,
                         ::testing::Values(FieldId::gf2_4, FieldId::gf2_8,
                                           FieldId::gf2_16, FieldId::gf2_32),
                         [](const auto& info) {
                           switch (info.param) {
                             case FieldId::gf2_4: return "GF16";
                             case FieldId::gf2_8: return "GF256";
                             case FieldId::gf2_16: return "GF65536";
                             default: return "GF2pow32";
                           }
                         });

}  // namespace
}  // namespace fairshare::gf
