// GF(2)[x] utilities and validation of the library's reduction moduli.
#include <gtest/gtest.h>

#include "gf/field.hpp"
#include "gf/polynomial.hpp"

namespace fairshare::gf {
namespace {

TEST(PolyDegree, Basics) {
  EXPECT_EQ(poly_degree(1), 0);
  EXPECT_EQ(poly_degree(2), 1);
  EXPECT_EQ(poly_degree(0x13), 4);
  EXPECT_EQ(poly_degree(0x100400007ull), 32);
}

TEST(PolyMulMod, MatchesFieldMultiplication) {
  for (std::uint64_t a = 0; a < 16; ++a)
    for (std::uint64_t b = 0; b < 16; ++b)
      EXPECT_EQ(poly_mul_mod(a, b, FieldTraits<4>::modulus, 4),
                GF<4>::mul(static_cast<std::uint8_t>(a),
                           static_cast<std::uint8_t>(b)));
}

TEST(Irreducibility, LibraryModuliAreIrreducible) {
  EXPECT_TRUE(poly_is_irreducible(FieldTraits<4>::modulus, 4));
  EXPECT_TRUE(poly_is_irreducible(FieldTraits<8>::modulus, 8));
  EXPECT_TRUE(poly_is_irreducible(FieldTraits<16>::modulus, 16));
  EXPECT_TRUE(poly_is_irreducible(FieldTraits<32>::modulus, 32));
}

TEST(Irreducibility, KnownReduciblePolynomialsRejected) {
  // x^4 + x^2 + 1 = (x^2 + x + 1)^2.
  EXPECT_FALSE(poly_is_irreducible(0x15, 4));
  // x^4 + 1 = (x + 1)^4.
  EXPECT_FALSE(poly_is_irreducible(0x11, 4));
  // x^8 + x^4 + x^2 + x = x * (...): has factor x.
  EXPECT_FALSE(poly_is_irreducible(0x116, 8));
  // CRC-16-CCITT x^16+x^12+x^5+1 has even weight -> divisible by x + 1.
  EXPECT_FALSE(poly_is_irreducible(0x11021, 16));
}

TEST(Irreducibility, OtherKnownIrreduciblesAccepted) {
  // AES polynomial x^8+x^4+x^3+x+1.
  EXPECT_TRUE(poly_is_irreducible(0x11B, 8));
  // x^2 + x + 1, the unique irreducible quadratic.
  EXPECT_TRUE(poly_is_irreducible(0x7, 2));
  EXPECT_FALSE(poly_is_irreducible(0x5, 2));  // x^2 + 1 = (x+1)^2
}

TEST(Primitivity, SmallFieldModuliArePrimitive) {
  // The log/exp construction of field.cpp requires x primitive for p<=16.
  EXPECT_TRUE(poly_is_primitive(FieldTraits<4>::modulus, 4));
  EXPECT_TRUE(poly_is_primitive(FieldTraits<8>::modulus, 8));
  EXPECT_TRUE(poly_is_primitive(FieldTraits<16>::modulus, 16));
}

TEST(Primitivity, AesPolynomialIsIrreducibleButNotPrimitive) {
  // Classic fact: x has order 51 under 0x11B, not 255.
  EXPECT_TRUE(poly_is_irreducible(0x11B, 8));
  EXPECT_FALSE(poly_is_primitive(0x11B, 8));
}

TEST(Frobenius, FixedFieldOfFrobeniusIsPrimeField) {
  // v^(2^1) == v only for v in {0, 1} when the modulus is irreducible of
  // degree > 1 (the prime subfield GF(2)).
  const std::uint64_t mod = FieldTraits<8>::modulus;
  int fixed = 0;
  for (std::uint64_t v = 0; v < 256; ++v)
    if (poly_frobenius(v, mod, 8, 1) == v) ++fixed;
  EXPECT_EQ(fixed, 2);
}

}  // namespace
}  // namespace fairshare::gf
