// Packed row operations vs. the scalar reference, across all four fields.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "gf/row_ops.hpp"
#include "sim/rng.hpp"

namespace fairshare::gf {
namespace {

class RowOpsTest : public ::testing::TestWithParam<FieldId> {
 protected:
  const FieldView& f() const { return field_view(GetParam()); }

  std::vector<std::byte> random_row(std::size_t n, sim::SplitMix64& rng) {
    std::vector<std::byte> row(f().row_bytes(n), std::byte{0});
    for (std::size_t i = 0; i < n; ++i)
      f().set(row.data(), i, rng.next() & (f().order - 1));
    return row;
  }

  std::uint64_t random_scalar(sim::SplitMix64& rng) {
    return rng.next() & (f().order - 1);
  }
};

TEST_P(RowOpsTest, GetSetRoundTrip) {
  sim::SplitMix64 rng(42);
  const std::size_t n = 257;  // odd length exercises nibble packing
  std::vector<std::byte> row(f().row_bytes(n), std::byte{0});
  std::vector<std::uint64_t> expected(n);
  for (std::size_t i = 0; i < n; ++i) {
    expected[i] = rng.next() & (f().order - 1);
    f().set(row.data(), i, expected[i]);
  }
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(f().get(row.data(), i), expected[i]) << "index " << i;
}

TEST_P(RowOpsTest, SetDoesNotDisturbNeighbors) {
  const std::size_t n = 8;
  std::vector<std::byte> row(f().row_bytes(n), std::byte{0});
  for (std::size_t i = 0; i < n; ++i) f().set(row.data(), i, 1);
  f().set(row.data(), 3, f().order - 1);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(f().get(row.data(), i), i == 3 ? f().order - 1 : 1u);
}

TEST_P(RowOpsTest, AxpyMatchesScalarReference) {
  sim::SplitMix64 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.next_below(300);
    auto dst = random_row(n, rng);
    const auto src = random_row(n, rng);
    const std::uint64_t c = random_scalar(rng);

    std::vector<std::uint64_t> expected(n);
    for (std::size_t i = 0; i < n; ++i)
      expected[i] = f().get(dst.data(), i) ^ f().mul(c, f().get(src.data(), i));

    f().axpy(dst.data(), src.data(), c, n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(f().get(dst.data(), i), expected[i])
          << "n=" << n << " c=" << c << " i=" << i;
  }
}

TEST_P(RowOpsTest, AxpyWithZeroScalarIsNoOp) {
  sim::SplitMix64 rng(8);
  const std::size_t n = 64;
  auto dst = random_row(n, rng);
  const auto before = dst;
  const auto src = random_row(n, rng);
  f().axpy(dst.data(), src.data(), 0, n);
  EXPECT_EQ(dst, before);
}

TEST_P(RowOpsTest, AxpyWithOneIsXor) {
  sim::SplitMix64 rng(9);
  const std::size_t n = 64;
  auto dst = random_row(n, rng);
  const auto src = random_row(n, rng);
  std::vector<std::uint64_t> expected(n);
  for (std::size_t i = 0; i < n; ++i)
    expected[i] = f().get(dst.data(), i) ^ f().get(src.data(), i);
  f().axpy(dst.data(), src.data(), 1, n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(f().get(dst.data(), i), expected[i]);
}

TEST_P(RowOpsTest, AxpyTwiceCancels) {
  // Characteristic 2: y ^= c*x twice restores y.
  sim::SplitMix64 rng(10);
  const std::size_t n = 100;
  auto dst = random_row(n, rng);
  const auto before = dst;
  const auto src = random_row(n, rng);
  const std::uint64_t c = random_scalar(rng);
  f().axpy(dst.data(), src.data(), c, n);
  f().axpy(dst.data(), src.data(), c, n);
  EXPECT_EQ(dst, before);
}

TEST_P(RowOpsTest, ScaleMatchesScalarReference) {
  sim::SplitMix64 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.next_below(300);
    auto row = random_row(n, rng);
    const std::uint64_t c = random_scalar(rng);
    std::vector<std::uint64_t> expected(n);
    for (std::size_t i = 0; i < n; ++i)
      expected[i] = f().mul(c, f().get(row.data(), i));
    f().scale(row.data(), c, n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(f().get(row.data(), i), expected[i]);
  }
}

TEST_P(RowOpsTest, ScaleThenInverseScaleRestores) {
  sim::SplitMix64 rng(12);
  const std::size_t n = 128;
  auto row = random_row(n, rng);
  const auto before = row;
  std::uint64_t c;
  do {
    c = random_scalar(rng);
  } while (c == 0);
  f().scale(row.data(), c, n);
  f().scale(row.data(), f().inv(c), n);
  EXPECT_EQ(row, before);
}

TEST_P(RowOpsTest, RowBytesMatchesSymbolWidth) {
  switch (GetParam()) {
    case FieldId::gf2_4:
      EXPECT_EQ(f().row_bytes(7), 4u);
      EXPECT_EQ(f().row_bytes(8), 4u);
      break;
    case FieldId::gf2_8:
      EXPECT_EQ(f().row_bytes(8), 8u);
      break;
    case FieldId::gf2_16:
      EXPECT_EQ(f().row_bytes(8), 16u);
      break;
    case FieldId::gf2_32:
      EXPECT_EQ(f().row_bytes(8), 32u);
      break;
  }
}

TEST_P(RowOpsTest, ScalarOpsAgreeWithView) {
  sim::SplitMix64 rng(13);
  for (int i = 0; i < 100; ++i) {
    std::uint64_t a = random_scalar(rng);
    std::uint64_t b = random_scalar(rng);
    if (a == 0) a = 1;
    EXPECT_EQ(f().mul(a, f().inv(a)), 1u);
    EXPECT_EQ(f().mul(a, b), f().mul(b, a));
    EXPECT_EQ(f().pow(a, 3), f().mul(a, f().mul(a, a)));
  }
}

INSTANTIATE_TEST_SUITE_P(AllFields, RowOpsTest,
                         ::testing::Values(FieldId::gf2_4, FieldId::gf2_8,
                                           FieldId::gf2_16, FieldId::gf2_32),
                         [](const auto& info) {
                           switch (info.param) {
                             case FieldId::gf2_4: return "GF16";
                             case FieldId::gf2_8: return "GF256";
                             case FieldId::gf2_16: return "GF65536";
                             default: return "GF2pow32";
                           }
                         });

}  // namespace
}  // namespace fairshare::gf
