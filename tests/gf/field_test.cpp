// Field axioms and known values for GF(2^4), GF(2^8), GF(2^16), GF(2^32).
#include <gtest/gtest.h>

#include <cstdint>

#include "gf/field.hpp"
#include "sim/rng.hpp"

namespace fairshare::gf {
namespace {

// Typed tests over the four compile-time fields.
template <typename F>
class FieldAxioms : public ::testing::Test {
 protected:
  using Elem = typename F::Elem;

  Elem random_elem(sim::SplitMix64& rng) {
    return static_cast<Elem>(rng.next() & (F::order - 1));
  }
  Elem random_nonzero(sim::SplitMix64& rng) {
    Elem e;
    do {
      e = random_elem(rng);
    } while (e == 0);
    return e;
  }
};

using FieldTypes = ::testing::Types<GF<4>, GF<8>, GF<16>, GF<32>>;
TYPED_TEST_SUITE(FieldAxioms, FieldTypes);

TYPED_TEST(FieldAxioms, AdditionIsXor) {
  EXPECT_EQ(TypeParam::add(0b0101, 0b0011), 0b0110u);
  EXPECT_EQ(TypeParam::sub(0b0101, 0b0011), 0b0110u);
}

TYPED_TEST(FieldAxioms, MultiplicativeIdentity) {
  sim::SplitMix64 rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto a = this->random_elem(rng);
    EXPECT_EQ(TypeParam::mul(a, 1), a);
    EXPECT_EQ(TypeParam::mul(1, a), a);
  }
}

TYPED_TEST(FieldAxioms, MultiplicationByZero) {
  sim::SplitMix64 rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto a = this->random_elem(rng);
    EXPECT_EQ(TypeParam::mul(a, 0), 0u);
    EXPECT_EQ(TypeParam::mul(0, a), 0u);
  }
}

TYPED_TEST(FieldAxioms, MultiplicationCommutes) {
  sim::SplitMix64 rng(3);
  for (int i = 0; i < 500; ++i) {
    const auto a = this->random_elem(rng);
    const auto b = this->random_elem(rng);
    EXPECT_EQ(TypeParam::mul(a, b), TypeParam::mul(b, a));
  }
}

TYPED_TEST(FieldAxioms, MultiplicationAssociates) {
  sim::SplitMix64 rng(4);
  for (int i = 0; i < 500; ++i) {
    const auto a = this->random_elem(rng);
    const auto b = this->random_elem(rng);
    const auto c = this->random_elem(rng);
    EXPECT_EQ(TypeParam::mul(TypeParam::mul(a, b), c),
              TypeParam::mul(a, TypeParam::mul(b, c)));
  }
}

TYPED_TEST(FieldAxioms, DistributesOverAddition) {
  sim::SplitMix64 rng(5);
  for (int i = 0; i < 500; ++i) {
    const auto a = this->random_elem(rng);
    const auto b = this->random_elem(rng);
    const auto c = this->random_elem(rng);
    EXPECT_EQ(TypeParam::mul(a, TypeParam::add(b, c)),
              TypeParam::add(TypeParam::mul(a, b), TypeParam::mul(a, c)));
  }
}

TYPED_TEST(FieldAxioms, InverseRoundTrip) {
  sim::SplitMix64 rng(6);
  for (int i = 0; i < 500; ++i) {
    const auto a = this->random_nonzero(rng);
    const auto inv = TypeParam::inv(a);
    EXPECT_NE(inv, 0u);
    EXPECT_EQ(TypeParam::mul(a, inv), 1u) << "a = " << std::uint64_t{a};
  }
}

TYPED_TEST(FieldAxioms, DivisionInvertsMultiplication) {
  sim::SplitMix64 rng(7);
  for (int i = 0; i < 300; ++i) {
    const auto a = this->random_elem(rng);
    const auto b = this->random_nonzero(rng);
    EXPECT_EQ(TypeParam::div(TypeParam::mul(a, b), b), a);
  }
}

TYPED_TEST(FieldAxioms, FermatLittleTheorem) {
  // a^(q-1) == 1 for a != 0: holds for every element iff the modulus is
  // irreducible, so this doubles as a field-construction check.
  sim::SplitMix64 rng(8);
  for (int i = 0; i < 100; ++i) {
    const auto a = this->random_nonzero(rng);
    EXPECT_EQ(TypeParam::pow(a, TypeParam::group_order), 1u);
  }
}

TYPED_TEST(FieldAxioms, PowMatchesRepeatedMultiplication) {
  sim::SplitMix64 rng(9);
  for (int i = 0; i < 50; ++i) {
    const auto a = this->random_elem(rng);
    typename TypeParam::Elem expected = 1;
    for (std::uint64_t e = 0; e < 16; ++e) {
      EXPECT_EQ(TypeParam::pow(a, e), expected);
      expected = TypeParam::mul(expected, a);
    }
  }
}

TYPED_TEST(FieldAxioms, PowZeroExponent) {
  EXPECT_EQ(TypeParam::pow(0, 0), 1u);  // convention: 0^0 = 1
  EXPECT_EQ(TypeParam::pow(5 & (TypeParam::order - 1), 0), 1u);
}

// ---------------------------------------------------------- known values

TEST(FieldKnownValues, Gf16XTimesX) {
  // x * x = x^2 = 4 in GF(2^4).
  EXPECT_EQ(GF<4>::mul(2, 2), 4);
  // x^3 * x = x^4 = x + 1 = 3 under x^4 + x + 1.
  EXPECT_EQ(GF<4>::mul(8, 2), 3);
}

TEST(FieldKnownValues, Gf256ReductionStep) {
  // x^7 * x = x^8 = x^4 + x^3 + x^2 + 1 = 0x1D under 0x11D.
  EXPECT_EQ(GF<8>::mul(0x80, 2), 0x1D);
}

TEST(FieldKnownValues, Gf65536ReductionStep) {
  // x^15 * x = x^16 = x^12 + x^3 + x + 1 = 0x100B under 0x1100B.
  EXPECT_EQ(GF<16>::mul(0x8000, 2), 0x100B);
}

TEST(FieldKnownValues, Gf32ReductionStep) {
  // x^31 * x = x^32 = x^22 + x^2 + x + 1 = 0x00400007 under 0x100400007.
  EXPECT_EQ(GF<32>::mul(0x80000000u, 2), 0x00400007u);
}

TEST(FieldLogExp, RoundTripAllElementsGf16) {
  for (std::uint32_t a = 1; a < 16; ++a)
    EXPECT_EQ(GF<4>::exp(GF<4>::log(static_cast<std::uint8_t>(a))), a);
}

TEST(FieldLogExp, RoundTripAllElementsGf256) {
  for (std::uint32_t a = 1; a < 256; ++a)
    EXPECT_EQ(GF<8>::exp(GF<8>::log(static_cast<std::uint8_t>(a))), a);
}

TEST(FieldLogExp, RoundTripSampledGf65536) {
  sim::SplitMix64 rng(10);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint16_t>(1 + rng.next_below(65535));
    EXPECT_EQ(GF<16>::exp(GF<16>::log(a)), a);
  }
}

TEST(FieldLogExp, LogOfOneIsZero) {
  EXPECT_EQ(GF<4>::log(1), 0u);
  EXPECT_EQ(GF<8>::log(1), 0u);
  EXPECT_EQ(GF<16>::log(1), 0u);
}

TEST(FieldLogExp, LogTurnsProductIntoSum) {
  sim::SplitMix64 rng(11);
  for (int i = 0; i < 300; ++i) {
    const auto a = static_cast<std::uint16_t>(1 + rng.next_below(65535));
    const auto b = static_cast<std::uint16_t>(1 + rng.next_below(65535));
    const std::uint32_t sum = (GF<16>::log(a) + GF<16>::log(b)) % 65535;
    EXPECT_EQ(GF<16>::log(GF<16>::mul(a, b)), sum);
  }
}

}  // namespace
}  // namespace fairshare::gf
