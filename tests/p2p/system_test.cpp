// End-to-end integration of the full system: dissemination, authenticated
// multi-peer download, aggregation beating the owner's upload capacity,
// and adversaries.
#include <gtest/gtest.h>

#include <vector>

#include "p2p/system.hpp"
#include "sim/rng.hpp"

namespace fairshare::p2p {
namespace {

std::vector<std::byte> random_data(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

// Small payloads keep the protocol tests quick: 64 symbols of GF(2^32)
// = 256 B messages.
const coding::CodingParams kParams{gf::FieldId::gf2_32, 64};

SystemConfig fast_config() {
  SystemConfig cfg;
  cfg.auth = AuthMode::disabled;
  cfg.handshake_slots = 0;
  return cfg;
}

std::vector<PeerParams> uniform_peers(std::size_t n, double kbps) {
  std::vector<PeerParams> peers(n);
  for (auto& p : peers) p.upload_kbps = kbps;
  return peers;
}

TEST(P2PSystem, DisseminationFillsPeerStores) {
  System sys(uniform_peers(4, 256), fast_config());
  const auto data = random_data(4096, 1);
  sys.share_file(0, 1, data, kParams);  // k = 16 chunks of 256 B
  EXPECT_LT(sys.dissemination_progress(1), 1.0);
  sys.run(2000);
  EXPECT_DOUBLE_EQ(sys.dissemination_progress(1), 1.0);
  const std::size_t k = coding::chunks_for_bytes(data.size(), kParams);
  for (PeerId p = 1; p < 4; ++p) {
    EXPECT_EQ(sys.stored_messages(p, 1), k) << "peer " << p;
    EXPECT_EQ(sys.store_bytes(p), k * kParams.message_bytes());
  }
  EXPECT_EQ(sys.stored_messages(0, 1), 0u);  // owner keeps the plain file
}

TEST(P2PSystem, DisseminationRespectsUploadCapacity) {
  // 3 peers get k=16 messages of 272 B each: 16*2*272*8/1000 kb ~ 69.6 kb
  // at 256 kbps -> takes at least ceil(69.6/0.256)/1000... i.e. > 0 slots;
  // check monotone progress bounded by capacity.
  System sys(uniform_peers(3, 256), fast_config());
  const auto data = random_data(4096, 2);
  sys.share_file(0, 1, data, kParams);
  double last = 0.0;
  for (int t = 0; t < 50; ++t) {
    sys.step();
    const double now = sys.dissemination_progress(1);
    EXPECT_GE(now, last);
    last = now;
  }
  // At 16 kbps the ~70 kb of queued messages need several slots: after
  // one slot dissemination must NOT be done, and progress per slot is
  // bounded by capacity.
  System sys2(uniform_peers(3, 16), fast_config());
  sys2.share_file(0, 1, data, kParams);
  sys2.step();
  EXPECT_LT(sys2.dissemination_progress(1), 1.0);
}

TEST(P2PSystem, DownloadReconstructsExactFile) {
  System sys(uniform_peers(4, 512), fast_config());
  const auto data = random_data(10000, 3);
  sys.share_file(0, 7, data, kParams);
  sys.run(500);  // let dissemination finish
  const auto req = sys.request_file(0, 7, 100000);
  ASSERT_TRUE(sys.run_until_complete(req, 5000));
  EXPECT_EQ(sys.data(req), data);
  EXPECT_EQ(sys.stats(req).messages_bad_digest, 0u);
}

TEST(P2PSystem, AggregationBeatsOwnersUploadCapacity) {
  // The headline claim: with 5 peers serving, the user's download rate
  // exceeds the home link's upload capacity.  Use a 1 MB file with 16 KiB
  // messages (k = 64) so the transfer spans several slots and the rate is
  // measurable.
  const coding::CodingParams big{gf::FieldId::gf2_32, 4096};
  System sys(uniform_peers(6, 256), fast_config());
  const auto data = random_data(1u << 20, 4);
  sys.share_file(0, 1, data, big);
  sys.run(30000);  // disseminate fully: 5 peers x 64 msgs x ~131 kb
  ASSERT_DOUBLE_EQ(sys.dissemination_progress(1), 1.0);

  const auto req = sys.request_file(0, 1, 1e9);
  ASSERT_TRUE(sys.run_until_complete(req, 5000));
  const auto& stats = sys.stats(req);
  const std::uint64_t duration = stats.completed_slot - stats.started_slot;
  const double avg_kbps =
      static_cast<double>(data.size()) * 8.0 / 1000.0 /
      static_cast<double>(duration);
  // Owner alone uploads at 256 kbps; the swarm should noticeably beat it.
  EXPECT_GT(avg_kbps, 2.0 * 256.0);
  EXPECT_EQ(sys.data(req), data);
}

TEST(P2PSystem, ClientServerFallbackBeforeDissemination) {
  // "The file contents are always still available directly from peer u
  // ... during the initialization phase."
  System sys(uniform_peers(3, 256), fast_config());
  const auto data = random_data(4096, 5);
  sys.share_file(0, 1, data, kParams);
  // Request immediately; only the owner can serve.
  const auto req = sys.request_file(1, 1, 100000);
  ASSERT_TRUE(sys.run_until_complete(req, 10000));
  EXPECT_EQ(sys.data(req), data);
}

TEST(P2PSystem, StopsAtExactlyKInnovativeMessages) {
  System sys(uniform_peers(4, 1024), fast_config());
  const auto data = random_data(8192, 6);
  const std::size_t k = coding::chunks_for_bytes(data.size(), kParams);
  sys.share_file(0, 1, data, kParams);
  sys.run(1000);
  const auto req = sys.request_file(0, 1, 1e9);
  ASSERT_TRUE(sys.run_until_complete(req, 5000));
  EXPECT_EQ(sys.stats(req).messages_accepted, k);
}

TEST(P2PSystem, TamperingPeerIsNeutralizedByDigests) {
  // Peer 0 serves corrupted payloads.  Peers are served in id order within
  // a slot, so with the owner at index 3 the tamperer's messages reach the
  // decoder first, are all rejected by the MD5 check, and the honest peers
  // plus the owner cover the shortfall.
  auto peers = uniform_peers(4, 512);
  peers[0].tampers = true;
  System sys(std::move(peers), fast_config());
  const auto data = random_data(8192, 7);
  sys.share_file(3, 1, data, kParams);
  sys.run(2000);
  const auto req = sys.request_file(3, 1, 1e9);
  ASSERT_TRUE(sys.run_until_complete(req, 10000));
  EXPECT_EQ(sys.data(req), data);  // still correct
  EXPECT_GT(sys.stats(req).messages_bad_digest, 0u);  // and detected
}

TEST(P2PSystem, StorageLimitedPeersStillDecodeViaOthers) {
  // k' < k mode: peers hold fewer than k messages; the union suffices.
  auto peers = uniform_peers(4, 512);
  const auto data = random_data(8192, 8);
  const std::size_t k = coding::chunks_for_bytes(data.size(), kParams);
  for (auto& p : peers) p.store_limit_per_file = k / 2;
  System sys(std::move(peers), fast_config());
  sys.share_file(0, 1, data, kParams);
  sys.run(2000);
  for (PeerId p = 1; p < 4; ++p)
    EXPECT_EQ(sys.stored_messages(p, 1), k / 2);
  const auto req = sys.request_file(0, 1, 1e9);
  ASSERT_TRUE(sys.run_until_complete(req, 10000));
  EXPECT_EQ(sys.data(req), data);
}

TEST(P2PSystem, DownloadCapThrottlesAggregation) {
  System sys(uniform_peers(5, 1000), fast_config());
  const auto data = random_data(16384, 9);
  sys.share_file(0, 1, data, kParams);
  sys.run(2000);
  const double cap = 500.0;  // below a single peer's upload
  const auto req = sys.request_file(0, 1, cap);
  ASSERT_TRUE(sys.run_until_complete(req, 20000));
  // No slot may exceed the user's download capacity.
  const auto& trace = sys.download_trace(0);
  for (std::size_t t = 0; t < trace.size(); ++t)
    EXPECT_LE(trace.at(t), cap + 1e-6) << "slot " << t;
}

TEST(P2PSystem, AuthenticatedSessionsWork) {
  SystemConfig cfg;
  cfg.auth = AuthMode::full;
  cfg.rsa_bits = 512;
  cfg.handshake_slots = 2;
  System sys(uniform_peers(3, 1024), cfg);
  const auto data = random_data(4096, 10);
  sys.share_file(0, 1, data, kParams);
  sys.run(500);
  const auto req = sys.request_file(0, 1, 1e9);
  ASSERT_TRUE(sys.run_until_complete(req, 5000));
  EXPECT_EQ(sys.data(req), data);
  EXPECT_EQ(sys.stats(req).auth_failures, 0u);
}

TEST(P2PSystem, ImpersonatingPeerFailsHandshakeAndServesNothing) {
  SystemConfig cfg;
  cfg.auth = AuthMode::full;
  cfg.rsa_bits = 512;
  auto peers = uniform_peers(3, 1024);
  peers[2].impersonates = true;
  System sys(std::move(peers), cfg);
  const auto data = random_data(4096, 11);
  sys.share_file(0, 1, data, kParams);
  sys.run(500);
  const auto req = sys.request_file(0, 1, 1e9);
  ASSERT_TRUE(sys.run_until_complete(req, 10000));
  EXPECT_EQ(sys.data(req), data);  // others cover the shortfall
  EXPECT_EQ(sys.stats(req).auth_failures, 1u);
}

TEST(P2PSystem, MultipleFilesCoexist) {
  System sys(uniform_peers(3, 1024), fast_config());
  const auto data_a = random_data(4096, 12);
  const auto data_b = random_data(6000, 13);
  sys.share_file(0, 1, data_a, kParams);
  sys.share_file(1, 2, data_b, kParams);
  sys.run(3000);
  const auto req_a = sys.request_file(0, 1, 1e9);
  const auto req_b = sys.request_file(1, 2, 1e9);
  ASSERT_TRUE(sys.run_until_complete(req_a, 5000));
  ASSERT_TRUE(sys.run_until_complete(req_b, 5000));
  EXPECT_EQ(sys.data(req_a), data_a);
  EXPECT_EQ(sys.data(req_b), data_b);
}

TEST(P2PSystem, SequentialRequestsBySameUser) {
  System sys(uniform_peers(3, 1024), fast_config());
  const auto data = random_data(4096, 14);
  sys.share_file(0, 1, data, kParams);
  sys.run(1000);
  const auto r1 = sys.request_file(0, 1, 1e9);
  ASSERT_TRUE(sys.run_until_complete(r1, 5000));
  const auto r2 = sys.request_file(0, 1, 1e9);
  ASSERT_TRUE(sys.run_until_complete(r2, 5000));
  EXPECT_EQ(sys.data(r2), data);
}

TEST(P2PSystem, LossyLinksRetransmitUntilComplete) {
  auto peers = uniform_peers(4, 512);
  for (auto& p : peers) p.loss_rate = 0.4;  // brutal links everywhere
  System sys(std::move(peers), fast_config());
  const auto data = random_data(8192, 20);
  sys.share_file(0, 1, data, kParams);
  sys.run(2000);
  const auto req = sys.request_file(0, 1, 1e9);
  ASSERT_TRUE(sys.run_until_complete(req, 20000));
  EXPECT_EQ(sys.data(req), data);
  EXPECT_GT(sys.stats(req).messages_lost, 0u);
}

TEST(P2PSystem, LossSlowsButDoesNotCorrupt) {
  // Sized so the clean transfer spans several slots (k=256 messages at
  // 4 x 64 kbps), making the retransmission cost measurable.
  const auto data = random_data(65536, 21);
  auto run_with_loss = [&](double loss) {
    auto peers = uniform_peers(4, 64);
    for (auto& p : peers) p.loss_rate = loss;
    System sys(std::move(peers), fast_config());
    sys.share_file(0, 1, data, kParams);
    sys.run(4000);
    const auto req = sys.request_file(0, 1, 1e9);
    EXPECT_TRUE(sys.run_until_complete(req, 50000));
    EXPECT_EQ(sys.data(req), data);
    return sys.stats(req).completed_slot - sys.stats(req).started_slot;
  };
  const auto clean = run_with_loss(0.0);
  const auto lossy = run_with_loss(0.5);
  EXPECT_GT(lossy, clean);  // retransmissions cost real time
}

TEST(P2PSystem, TotallyLossyPeerIsCoveredByOthers) {
  auto peers = uniform_peers(4, 512);
  peers[1].loss_rate = 1.0;  // black-holes everything it serves
  System sys(std::move(peers), fast_config());
  const auto data = random_data(8192, 22);
  sys.share_file(0, 1, data, kParams);
  sys.run(2000);
  const auto req = sys.request_file(0, 1, 1e9);
  ASSERT_TRUE(sys.run_until_complete(req, 50000));
  EXPECT_EQ(sys.data(req), data);
}

TEST(P2PSystem, DhtSelectsOnlyPeersHoldingContent) {
  System sys(uniform_peers(5, 512), fast_config());
  const auto data = random_data(4096, 30);
  sys.share_file(0, 1, data, kParams);

  // Before any dissemination only the owner is contacted...
  const auto early = sys.request_file(0, 1, 1e9);
  ASSERT_TRUE(sys.run_until_complete(early, 10000));
  EXPECT_EQ(sys.stats(early).peers_contacted, 1u);
  EXPECT_EQ(sys.data(early), data);

  // ...after full dissemination the DHT reports all four holders.
  sys.run(2000);
  ASSERT_DOUBLE_EQ(sys.dissemination_progress(1), 1.0);
  const auto late = sys.request_file(0, 1, 1e9);
  ASSERT_TRUE(sys.run_until_complete(late, 10000));
  EXPECT_EQ(sys.stats(late).peers_contacted, 5u);  // 4 holders + owner
}

TEST(P2PSystem, DhtLookupCostIsReported) {
  System sys(uniform_peers(8, 512), fast_config());
  const auto data = random_data(4096, 31);
  sys.share_file(2, 9, data, kParams);
  sys.run(2000);
  const auto req = sys.request_file(2, 9, 1e9);
  ASSERT_TRUE(sys.run_until_complete(req, 10000));
  // Hop count is environment-dependent but must stay logarithmic-small.
  EXPECT_LE(sys.stats(req).locate_hops, 8u);
}

TEST(P2PSystem, ConcurrentDownloadsShareUploadByCredit) {
  // Two users pull different files at once; every transfer completes and
  // the per-slot download of each user never exceeds total system upload.
  System sys(uniform_peers(4, 512), fast_config());
  const auto data_a = random_data(16384, 40);
  const auto data_b = random_data(16384, 41);
  sys.share_file(0, 1, data_a, kParams);
  sys.share_file(1, 2, data_b, kParams);
  sys.run(4000);
  const auto ra = sys.request_file(0, 1, 1e9);
  const auto rb = sys.request_file(1, 2, 1e9);
  for (int i = 0; i < 20000 && !(sys.complete(ra) && sys.complete(rb)); ++i)
    sys.step();
  ASSERT_TRUE(sys.complete(ra));
  ASSERT_TRUE(sys.complete(rb));
  EXPECT_EQ(sys.data(ra), data_a);
  EXPECT_EQ(sys.data(rb), data_b);
  const auto& ta = sys.download_trace(0);
  for (std::size_t t = 0; t < ta.size(); ++t)
    EXPECT_LE(ta.at(t), 4 * 512.0 + 1e-6);
}

TEST(P2PSystem, DownloadSurvivesPeerGoingOffline) {
  System sys(uniform_peers(5, 64), fast_config());
  const auto data = random_data(32768, 50);  // k=128: several slots of work
  sys.share_file(0, 1, data, kParams);
  sys.run(20000);
  ASSERT_DOUBLE_EQ(sys.dissemination_progress(1), 1.0);

  const auto req = sys.request_file(0, 1, 1e9);
  sys.run(3);                    // transfer under way
  sys.set_online(2, false);      // a holder disappears mid-download
  ASSERT_TRUE(sys.run_until_complete(req, 50000));
  EXPECT_EQ(sys.data(req), data);
}

TEST(P2PSystem, OfflinePeerServesNothingUntilReturn) {
  System sys(uniform_peers(3, 256), fast_config());
  const auto data = random_data(8192, 51);
  sys.share_file(0, 1, data, kParams);
  sys.set_online(1, false);
  sys.set_online(2, false);
  sys.run(100);
  // Dissemination cannot proceed with every target offline.
  EXPECT_LT(sys.dissemination_progress(1), 1.0);
  EXPECT_EQ(sys.stored_messages(1, 1), 0u);
  sys.set_online(1, true);
  sys.set_online(2, true);
  sys.run(5000);
  EXPECT_DOUBLE_EQ(sys.dissemination_progress(1), 1.0);
}

TEST(P2PSystem, OfflineOwnerStillServedByPeers) {
  // The remote-access story: the home computer is off, yet the user
  // restores the file from the disseminated coded copies.
  System sys(uniform_peers(4, 512), fast_config());
  const auto data = random_data(8192, 52);
  sys.share_file(0, 1, data, kParams);
  sys.run(2000);
  ASSERT_DOUBLE_EQ(sys.dissemination_progress(1), 1.0);
  sys.set_online(0, false);  // owner's machine powered down
  const auto req = sys.request_file(0, 1, 1e9);
  ASSERT_TRUE(sys.run_until_complete(req, 20000));
  EXPECT_EQ(sys.data(req), data);
}

TEST(P2PSystem, ChaosKnobsMirrorSocketFaultPlans) {
  // The simulator twin of chaos_test.cpp's acceptance scenario: the
  // requesting user's own peer (the owner) refuses to serve, one peer
  // resets mid-stream and is re-opened, one corrupts 10% of deliveries,
  // one is honest.  The union of surviving stores covers k, so the
  // download still completes with correct bytes.
  auto peers = uniform_peers(4, 512);
  peers[0].refuses_sessions = true;        // the owner itself
  peers[1].reset_after_messages = 4;       // flaps; failover re-opens it
  peers[2].tamper_rate = 0.1;              // 10% corrupted deliveries
  System sys(std::move(peers), fast_config());
  const auto data = random_data(8192, 90);
  sys.share_file(0, 1, data, kParams);
  sys.run(2000);
  ASSERT_DOUBLE_EQ(sys.dissemination_progress(1), 1.0);

  const auto req = sys.request_file(0, 1, 1e9);
  ASSERT_TRUE(sys.run_until_complete(req, 20000));
  EXPECT_EQ(sys.data(req), data);
  const auto& stats = sys.stats(req);
  EXPECT_EQ(stats.sessions_refused, 1u);
  EXPECT_GT(stats.sessions_reset, 0u);
  EXPECT_GT(stats.messages_bad_digest, 0u);
}

TEST(P2PSystem, ChaosFailsCleanlyWhenSurvivorsHoldLessThanK) {
  // Owner refuses; the only other peer resets after 2 messages and every
  // reconnect re-streams the same 2 — the surviving union never reaches k
  // innovative messages, so the request must NOT complete, and the reset
  // budget (session_max_attempts) bounds how long it flaps.
  auto peers = uniform_peers(2, 512);
  peers[0].refuses_sessions = true;
  peers[1].reset_after_messages = 2;
  SystemConfig cfg = fast_config();
  cfg.session_max_attempts = 4;
  System sys(std::move(peers), cfg);
  const auto data = random_data(8192, 91);  // k = 32 >> 2
  sys.share_file(0, 1, data, kParams);
  sys.run(2000);

  const auto req = sys.request_file(0, 1, 1e9);
  EXPECT_FALSE(sys.run_until_complete(req, 5000));
  const auto& stats = sys.stats(req);
  EXPECT_EQ(stats.sessions_refused, 1u);
  EXPECT_EQ(stats.sessions_reset, 4u);  // one per connection attempt
  // Only the first 2 store messages ever arrive; re-streams of the same
  // prefix are non-innovative.
  EXPECT_EQ(stats.messages_accepted, 2u);
  EXPECT_GT(stats.messages_non_innovative, 0u);
}

}  // namespace
}  // namespace fairshare::p2p
