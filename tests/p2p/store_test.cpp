// Peer message storage.
#include <gtest/gtest.h>

#include "p2p/store.hpp"

namespace fairshare::p2p {
namespace {

coding::EncodedMessage msg(std::uint64_t file, std::uint64_t id,
                           std::size_t bytes = 10) {
  coding::EncodedMessage m;
  m.file_id = file;
  m.message_id = id;
  m.payload.assign(bytes, std::byte{static_cast<std::uint8_t>(id)});
  return m;
}

TEST(MessageStore, StoreAndRetrieve) {
  MessageStore store;
  EXPECT_TRUE(store.store(msg(1, 0)));
  EXPECT_TRUE(store.store(msg(1, 1)));
  EXPECT_TRUE(store.store(msg(2, 0)));
  EXPECT_EQ(store.count(1), 2u);
  EXPECT_EQ(store.count(2), 1u);
  EXPECT_EQ(store.count(3), 0u);
  EXPECT_EQ(store.at(1, 1).message_id, 1u);
  EXPECT_EQ(store.at(2, 0).file_id, 2u);
}

TEST(MessageStore, RejectsDuplicateMessageId) {
  MessageStore store;
  EXPECT_TRUE(store.store(msg(1, 5)));
  EXPECT_FALSE(store.store(msg(1, 5)));
  EXPECT_EQ(store.count(1), 1u);
}

TEST(MessageStore, SameIdDifferentFilesAllowed) {
  MessageStore store;
  EXPECT_TRUE(store.store(msg(1, 5)));
  EXPECT_TRUE(store.store(msg(2, 5)));
}

TEST(MessageStore, EnforcesPerFileLimit) {
  MessageStore store(2);  // the k' < k mode of Section III-D
  EXPECT_TRUE(store.store(msg(1, 0)));
  EXPECT_TRUE(store.store(msg(1, 1)));
  EXPECT_FALSE(store.store(msg(1, 2)));
  EXPECT_EQ(store.count(1), 2u);
  // Other files have their own budget.
  EXPECT_TRUE(store.store(msg(9, 0)));
}

TEST(MessageStore, TracksBytesUsed) {
  MessageStore store;
  EXPECT_EQ(store.bytes_used(), 0u);
  store.store(msg(1, 0, 100));
  store.store(msg(1, 1, 50));
  EXPECT_EQ(store.bytes_used(), 150u);
  store.store(msg(1, 1, 70));  // duplicate: not counted
  EXPECT_EQ(store.bytes_used(), 150u);
}

}  // namespace
}  // namespace fairshare::p2p
