// Peer message storage.
#include <gtest/gtest.h>

#include "p2p/store.hpp"

namespace fairshare::p2p {
namespace {

coding::EncodedMessage msg(std::uint64_t file, std::uint64_t id,
                           std::size_t bytes = 10) {
  coding::EncodedMessage m;
  m.file_id = file;
  m.message_id = id;
  m.payload.assign(bytes, std::byte{static_cast<std::uint8_t>(id)});
  return m;
}

TEST(MessageStore, StoreAndRetrieve) {
  MessageStore store;
  EXPECT_TRUE(store.store(msg(1, 0)));
  EXPECT_TRUE(store.store(msg(1, 1)));
  EXPECT_TRUE(store.store(msg(2, 0)));
  EXPECT_EQ(store.count(1), 2u);
  EXPECT_EQ(store.count(2), 1u);
  EXPECT_EQ(store.count(3), 0u);
  EXPECT_EQ(store.at(1, 1).message_id, 1u);
  EXPECT_EQ(store.at(2, 0).file_id, 2u);
}

TEST(MessageStore, RejectsDuplicateMessageId) {
  MessageStore store;
  EXPECT_TRUE(store.store(msg(1, 5)));
  EXPECT_FALSE(store.store(msg(1, 5)));
  EXPECT_EQ(store.count(1), 1u);
}

TEST(MessageStore, SameIdDifferentFilesAllowed) {
  MessageStore store;
  EXPECT_TRUE(store.store(msg(1, 5)));
  EXPECT_TRUE(store.store(msg(2, 5)));
}

TEST(MessageStore, EnforcesPerFileLimit) {
  MessageStore store(2);  // the k' < k mode of Section III-D
  EXPECT_TRUE(store.store(msg(1, 0)));
  EXPECT_TRUE(store.store(msg(1, 1)));
  EXPECT_FALSE(store.store(msg(1, 2)));
  EXPECT_EQ(store.count(1), 2u);
  // Other files have their own budget.
  EXPECT_TRUE(store.store(msg(9, 0)));
}

TEST(MessageStore, TracksBytesUsed) {
  MessageStore store;
  EXPECT_EQ(store.bytes_used(), 0u);
  store.store(msg(1, 0, 100));
  store.store(msg(1, 1, 50));
  EXPECT_EQ(store.bytes_used(), 150u);
  store.store(msg(1, 1, 70));  // duplicate: not counted
  EXPECT_EQ(store.bytes_used(), 150u);
}

// --------------------------------------------------- encode-on-demand
// attach_source: the owner-side serving mode where messages are pulled
// from a generator (an encoder) as sessions consume them, instead of
// being stored verbatim.

TEST(MessageStore, SourceGeneratesLazilyAndCachesStably) {
  MessageStore store;
  std::size_t calls = 0;
  store.attach_source(7, /*budget=*/5, [&calls] {
    const std::size_t n = calls++;
    return msg(7, 100 + n, 10 + n);
  });
  EXPECT_EQ(store.count(7), 5u);
  EXPECT_EQ(calls, 0u) << "attach alone must not generate";

  // at() generates exactly up to the requested index, and repeated access
  // is served from the cache.
  EXPECT_EQ(store.at(7, 2).message_id, 102u);
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(store.at(7, 0).message_id, 100u);
  EXPECT_EQ(calls, 3u);

  // Reference stability: the zero-copy serve path keeps pointers into
  // returned messages across later generation, so growing the cache must
  // not move earlier entries.
  const coding::EncodedMessage* early = &store.at(7, 0);
  const std::byte* payload = early->payload.data();
  EXPECT_EQ(store.at(7, 4).message_id, 104u);
  EXPECT_EQ(calls, 5u);
  EXPECT_EQ(&store.at(7, 0), early);
  EXPECT_EQ(store.at(7, 0).payload.data(), payload);
}

TEST(MessageStore, SourceRejectsVerbatimWritesAndListsFile) {
  MessageStore store;
  store.attach_source(7, 3, [] { return msg(7, 0); });
  EXPECT_FALSE(store.store(msg(7, 99)))
      << "verbatim writes must not shift sourced indices";
  EXPECT_TRUE(store.store(msg(8, 0)));  // other files unaffected

  const std::vector<std::uint64_t> ids = store.file_ids();
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{7, 8}));

  // Source caches are derived data regenerable from the owner's encoder;
  // they do not count against the peer's storage-area accounting.
  (void)store.at(7, 1);
  EXPECT_EQ(store.bytes_used(), 10u);  // only file 8's verbatim message
}

TEST(MessageStore, ZeroBudgetSourceIsInvisible) {
  MessageStore store;
  store.attach_source(7, 0, [] { return msg(7, 0); });
  EXPECT_EQ(store.count(7), 0u);
  EXPECT_TRUE(store.file_ids().empty());
}

}  // namespace
}  // namespace fairshare::p2p
