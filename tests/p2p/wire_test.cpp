// Wire formats: exact round-trips, defensive parsing of truncated and
// mutated frames, and cross-type rejection.
#include <gtest/gtest.h>

#include <vector>

#include "p2p/wire.hpp"
#include "sim/rng.hpp"

namespace fairshare::p2p::wire {
namespace {

crypto::AuthHello sample_hello() {
  crypto::AuthHello m;
  m.user_id = 0x1122334455667788ull;
  for (std::size_t i = 0; i < m.user_nonce.size(); ++i)
    m.user_nonce[i] = static_cast<std::uint8_t>(i * 3);
  return m;
}

crypto::AuthChallenge sample_challenge() {
  crypto::AuthChallenge m;
  m.peer_id = 42;
  for (std::size_t i = 0; i < m.peer_nonce.size(); ++i)
    m.peer_nonce[i] = static_cast<std::uint8_t>(0xF0 - i);
  m.signature = {1, 2, 3, 4, 5, 6, 7};
  return m;
}

crypto::AuthResponse sample_response() {
  crypto::AuthResponse m;
  m.signature = {9, 8, 7};
  m.encrypted_session_key = {0xAA, 0xBB};
  return m;
}

coding::EncodedMessage sample_coded() {
  coding::EncodedMessage m;
  m.file_id = 7;
  m.message_id = 13;
  m.payload = {std::byte{1}, std::byte{2}, std::byte{3}, std::byte{255}};
  return m;
}

coding::AuthenticatedMessage sample_authenticated() {
  coding::AuthenticatedMessage m;
  m.message = sample_coded();
  m.leaf_index = 5;
  m.proof.resize(3);
  for (std::size_t p = 0; p < m.proof.size(); ++p)
    for (std::size_t i = 0; i < 32; ++i)
      m.proof[p][i] = static_cast<std::uint8_t>(p * 32 + i);
  return m;
}

coding::FileInfo sample_info() {
  coding::FileInfo info;
  info.file_id = 99;
  info.original_bytes = 123456;
  info.params = {gf::FieldId::gf2_16, 4096};
  info.k = 16;
  for (std::size_t i = 0; i < info.content_digest.size(); ++i)
    info.content_digest[i] = static_cast<std::uint8_t>(0x40 + i);
  for (std::uint64_t mid = 0; mid < 5; ++mid) {
    crypto::Md5Digest d{};
    d[0] = static_cast<std::uint8_t>(mid);
    info.message_digests.emplace(mid * 7, d);
  }
  return info;
}

TEST(Wire, AuthHelloRoundTrip) {
  const auto m = sample_hello();
  const auto frame = encode(m);
  EXPECT_EQ(peek_type(frame), MessageType::auth_hello);
  const auto back = decode_auth_hello(frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->user_id, m.user_id);
  EXPECT_EQ(back->user_nonce, m.user_nonce);
}

TEST(Wire, AuthChallengeRoundTrip) {
  const auto m = sample_challenge();
  const auto back = decode_auth_challenge(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->peer_id, m.peer_id);
  EXPECT_EQ(back->peer_nonce, m.peer_nonce);
  EXPECT_EQ(back->signature, m.signature);
}

TEST(Wire, AuthResponseRoundTrip) {
  const auto m = sample_response();
  const auto back = decode_auth_response(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->signature, m.signature);
  EXPECT_EQ(back->encrypted_session_key, m.encrypted_session_key);
}

TEST(Wire, FileRequestRoundTrip) {
  const FileRequest m{11, 22, 768.5};
  const auto back = decode_file_request(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(Wire, StopTransmissionRoundTrip) {
  const StopTransmission m{3, 4};
  const auto back = decode_stop_transmission(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(Wire, CodedMessageRoundTrip) {
  const auto m = sample_coded();
  const auto back = decode_coded_message(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->file_id, m.file_id);
  EXPECT_EQ(back->message_id, m.message_id);
  EXPECT_EQ(back->payload, m.payload);
}

TEST(Wire, EmptyPayloadCodedMessage) {
  coding::EncodedMessage m;
  m.file_id = 1;
  m.message_id = 2;
  const auto back = decode_coded_message(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->payload.empty());
}

TEST(Wire, CodedMessageHeaderPlusPayloadEqualsEncode) {
  // The scatter-gather serve path frames a message as header ++ payload;
  // that image must be byte-identical to the copying encoder's, for any
  // payload length (the u32 length field lives in the header).
  for (const std::size_t n : {0u, 1u, 255u, 4096u}) {
    coding::EncodedMessage m;
    m.file_id = 0x0123456789ABCDEFull;
    m.message_id = 0xFEDCBA9876543210ull;
    m.payload.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      m.payload[i] = std::byte{static_cast<std::uint8_t>(i * 37 + 1)};
    const auto header = encode_coded_message_header(m);
    std::vector<std::byte> gathered(header.begin(), header.end());
    gathered.insert(gathered.end(), m.payload.begin(), m.payload.end());
    EXPECT_EQ(gathered, encode(m)) << "payload bytes " << n;
    EXPECT_EQ(header.size(), kCodedMessageHeaderBytes);
  }
}

TEST(Wire, AuthenticatedMessageRoundTrip) {
  const auto m = sample_authenticated();
  const auto back = decode_authenticated_message(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->message.payload, m.message.payload);
  EXPECT_EQ(back->leaf_index, m.leaf_index);
  EXPECT_EQ(back->proof, m.proof);
}

TEST(Wire, FileInfoRoundTrip) {
  const auto info = sample_info();
  const auto back = decode_file_info(encode(info));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->file_id, info.file_id);
  EXPECT_EQ(back->original_bytes, info.original_bytes);
  EXPECT_EQ(back->params.field, info.params.field);
  EXPECT_EQ(back->params.m, info.params.m);
  EXPECT_EQ(back->k, info.k);
  EXPECT_EQ(back->content_digest, info.content_digest);
  EXPECT_EQ(back->message_digests, info.message_digests);
}

TEST(Wire, ChunkedFileInfoRoundTrip) {
  auto info = sample_info();
  info.codec = coding::CodecKind::chunked;
  info.schedule.class_size = 48;
  info.schedule.overlap = 6;
  info.schedule.seed = 0x1122334455667788ull;
  const auto back = decode_file_info(encode(info));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->codec, coding::CodecKind::chunked);
  EXPECT_EQ(back->schedule, info.schedule);
  EXPECT_EQ(back->message_digests, info.message_digests);
}

TEST(Wire, DenseFileInfoCarriesNoCodecTrailer) {
  // Dense metadata must stay byte-identical to the pre-codec wire format
  // (old clients keep working); the chunked trailer costs exactly
  // 1 (codec) + 4 (class_size) + 4 (overlap) + 8 (seed) bytes.
  auto info = sample_info();
  const auto dense_frame = encode(info);
  info.codec = coding::CodecKind::chunked;
  const auto chunked_frame = encode(info);
  EXPECT_EQ(chunked_frame.size(), dense_frame.size() + 17);

  const auto back = decode_file_info(dense_frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->codec, coding::CodecKind::dense);
  EXPECT_EQ(back->schedule, coding::ChunkedSchedule{});
}

TEST(Wire, PreCodecFileInfoDecodesAsDense) {
  // A chunked frame cut exactly at the trailer boundary is what an
  // old-format dense frame looks like: it must parse, as dense.  (Any
  // other cut inside the trailer is rejected by the truncation sweep.)
  auto info = sample_info();
  info.codec = coding::CodecKind::chunked;
  auto frame = encode(info);
  frame.resize(frame.size() - 17);
  const auto back = decode_file_info(frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->codec, coding::CodecKind::dense);
  EXPECT_EQ(back->k, info.k);
}

TEST(Wire, UnknownCodecAndInvalidScheduleRejected) {
  auto info = sample_info();
  info.codec = coding::CodecKind::chunked;
  info.schedule.class_size = 48;
  info.schedule.overlap = 6;
  auto frame = encode(info);
  ASSERT_TRUE(decode_file_info(frame).has_value());

  // The codec byte is the first trailer byte; 2 is from the future.
  auto future = frame;
  future[future.size() - 17] = std::byte{2};
  EXPECT_FALSE(decode_file_info(future).has_value());

  // overlap >= class_size is geometrically unusable.
  auto degenerate = sample_info();
  degenerate.codec = coding::CodecKind::chunked;
  degenerate.schedule.class_size = 8;
  degenerate.schedule.overlap = 8;
  EXPECT_FALSE(decode_file_info(encode(degenerate)).has_value());
}

TEST(Wire, ChunkedFileInfoTruncationsRejectedOrDense) {
  // The full truncation sweep for a chunked frame, acknowledging the one
  // deliberate exception: cutting the whole trailer yields a valid dense
  // parse (that IS the backward-compatibility contract).
  auto info = sample_info();
  info.codec = coding::CodecKind::chunked;
  const auto frame = encode(info);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const std::span<const std::byte> cut(frame.data(), len);
    const auto parsed = decode_file_info(cut);
    if (len == frame.size() - 17) {
      ASSERT_TRUE(parsed.has_value());
      EXPECT_EQ(parsed->codec, coding::CodecKind::dense);
    } else {
      EXPECT_FALSE(parsed.has_value()) << "truncation to " << len;
    }
  }
}

TEST(Wire, CrossTypeDecodingRejected) {
  const auto hello = encode(sample_hello());
  EXPECT_FALSE(decode_auth_challenge(hello).has_value());
  EXPECT_FALSE(decode_file_request(hello).has_value());
  EXPECT_FALSE(decode_coded_message(hello).has_value());
  EXPECT_FALSE(decode_file_info(hello).has_value());
}

TEST(Wire, EveryTruncationRejected) {
  const std::vector<std::vector<std::byte>> frames = {
      encode(sample_hello()),        encode(sample_challenge()),
      encode(sample_response()),     encode(FileRequest{1, 2, 3.0}),
      encode(StopTransmission{1, 2}), encode(sample_coded()),
      encode(sample_authenticated()), encode(sample_info())};
  for (const auto& frame : frames) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      const std::span<const std::byte> cut(frame.data(), len);
      const auto type = peek_type(frame);
      ASSERT_TRUE(type.has_value());
      bool parsed = false;
      switch (*type) {
        case MessageType::auth_hello: parsed = decode_auth_hello(cut).has_value(); break;
        case MessageType::auth_challenge: parsed = decode_auth_challenge(cut).has_value(); break;
        case MessageType::auth_response: parsed = decode_auth_response(cut).has_value(); break;
        case MessageType::file_request: parsed = decode_file_request(cut).has_value(); break;
        case MessageType::stop_transmission: parsed = decode_stop_transmission(cut).has_value(); break;
        case MessageType::coded_message: parsed = decode_coded_message(cut).has_value(); break;
        case MessageType::authenticated_message: parsed = decode_authenticated_message(cut).has_value(); break;
        case MessageType::file_info: parsed = decode_file_info(cut).has_value(); break;
      }
      EXPECT_FALSE(parsed) << "truncation to " << len << " bytes parsed";
    }
  }
}

TEST(Wire, TrailingGarbageRejected) {
  auto frame = encode(sample_coded());
  frame.push_back(std::byte{0});
  EXPECT_FALSE(decode_coded_message(frame).has_value());
}

TEST(Wire, CorruptLengthPrefixesRejectedNotCrash) {
  // Mutate every byte of a blob-bearing frame; decoding must never crash
  // and oversized length prefixes must fail cleanly.
  const auto base = encode(sample_authenticated());
  sim::SplitMix64 rng(5);
  for (std::size_t pos = 0; pos < base.size(); ++pos) {
    auto mutated = base;
    mutated[pos] ^= std::byte{static_cast<std::uint8_t>(1 + rng.next_below(255))};
    (void)decode_authenticated_message(mutated);  // must be total
  }
  // Specifically blow up the payload length field (offset 17..20).
  auto huge = base;
  huge[17] = std::byte{0xFF};
  huge[18] = std::byte{0xFF};
  huge[19] = std::byte{0xFF};
  huge[20] = std::byte{0xFF};
  EXPECT_FALSE(decode_authenticated_message(huge).has_value());
}

TEST(Wire, RandomBuffersNeverParseAsAuth) {
  sim::SplitMix64 rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::byte> junk(rng.next_below(120));
    for (auto& b : junk)
      b = std::byte{static_cast<std::uint8_t>(rng.next())};
    if (!junk.empty())
      junk[0] = std::byte{static_cast<std::uint8_t>(2)};  // claim challenge
    const auto parsed = decode_auth_challenge(junk);
    if (parsed) {
      // Structurally valid by luck is acceptable; the signature still
      // cannot verify — just ensure no crash and sane sizes.
      EXPECT_LE(parsed->signature.size(), junk.size());
    }
  }
}

TEST(Wire, PeekTypeRejectsUnknownTags) {
  EXPECT_FALSE(peek_type({}).has_value());
  const std::vector<std::byte> unknown{std::byte{0x7F}};
  EXPECT_FALSE(peek_type(unknown).has_value());
  const std::vector<std::byte> zero{std::byte{0}};
  EXPECT_FALSE(peek_type(zero).has_value());
}

TEST(Wire, FigureThreeLayoutCompatibility) {
  // EncodedMessage::serialize() is the raw Figure 3 layout (16-byte header
  // + payload); the framed wire adds 1 type byte + 4 length bytes.
  const auto m = sample_coded();
  EXPECT_EQ(encode(m).size(), m.wire_size() + 5);
}

}  // namespace
}  // namespace fairshare::p2p::wire
