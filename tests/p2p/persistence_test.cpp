// Durable peer state: store/file-info round trips and corruption handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "p2p/persistence.hpp"
#include "sim/rng.hpp"

namespace fairshare::p2p {
namespace {

coding::EncodedMessage msg(std::uint64_t file, std::uint64_t id,
                           std::size_t bytes = 32) {
  coding::EncodedMessage m;
  m.file_id = file;
  m.message_id = id;
  m.payload.resize(bytes);
  for (std::size_t i = 0; i < bytes; ++i)
    m.payload[i] = std::byte{static_cast<std::uint8_t>(id * 7 + i)};
  return m;
}

std::filesystem::path temp_file(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

TEST(Persistence, EmptyStoreRoundTrip) {
  MessageStore store;
  const auto blob = serialize_store(store);
  const auto back = deserialize_store(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->bytes_used(), 0u);
  EXPECT_TRUE(back->file_ids().empty());
}

TEST(Persistence, MultiFileRoundTripPreservesOrderAndBytes) {
  MessageStore store;
  for (std::uint64_t id = 0; id < 5; ++id) store.store(msg(1, id));
  for (std::uint64_t id = 0; id < 3; ++id) store.store(msg(2, 100 + id, 64));

  const auto back = deserialize_store(serialize_store(store));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->file_ids(), store.file_ids());
  EXPECT_EQ(back->bytes_used(), store.bytes_used());
  for (std::uint64_t fid : store.file_ids()) {
    ASSERT_EQ(back->count(fid), store.count(fid));
    for (std::size_t i = 0; i < store.count(fid); ++i) {
      EXPECT_EQ(back->at(fid, i).message_id, store.at(fid, i).message_id);
      EXPECT_EQ(back->at(fid, i).payload, store.at(fid, i).payload);
    }
  }
}

TEST(Persistence, LimitAppliesOnLoad) {
  MessageStore store;
  for (std::uint64_t id = 0; id < 6; ++id) store.store(msg(1, id));
  const auto back = deserialize_store(serialize_store(store), 2);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->count(1), 2u);
}

TEST(Persistence, CorruptionRejected) {
  MessageStore store;
  store.store(msg(1, 0));
  auto blob = serialize_store(store);
  // Bad magic.
  auto bad = blob;
  bad[0] = std::byte{'X'};
  EXPECT_FALSE(deserialize_store(bad).has_value());
  // Bad version.
  bad = blob;
  bad[4] = std::byte{9};
  EXPECT_FALSE(deserialize_store(bad).has_value());
  // Every truncation fails cleanly.
  for (std::size_t len = 0; len < blob.size(); ++len)
    EXPECT_FALSE(deserialize_store({blob.data(), len}).has_value()) << len;
  // Trailing garbage rejected.
  bad = blob;
  bad.push_back(std::byte{0});
  EXPECT_FALSE(deserialize_store(bad).has_value());
}

TEST(Persistence, FileBackedStoreRoundTrip) {
  MessageStore store;
  for (std::uint64_t id = 0; id < 4; ++id) store.store(msg(7, id, 100));
  const auto path = temp_file("fairshare_store_test.bin");
  ASSERT_TRUE(save_store(store, path.string()));
  const auto back = load_store(path.string());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->count(7), 4u);
  std::remove(path.string().c_str());
}

TEST(Persistence, LoadFromMissingFileFails) {
  EXPECT_FALSE(load_store("/nonexistent/fairshare.bin").has_value());
  EXPECT_FALSE(load_file_info("/nonexistent/info.bin").has_value());
}

TEST(Persistence, FileInfoRoundTripThroughDisk) {
  sim::SplitMix64 rng(1);
  std::vector<std::byte> data(2000);
  for (auto& b : data) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  coding::SecretKey secret{};
  coding::FileEncoder enc(secret, 5, data, {gf::FieldId::gf2_32, 64});
  enc.generate(enc.k());

  const auto path = temp_file("fairshare_info_test.bin");
  ASSERT_TRUE(save_file_info(enc.info(), path.string()));
  const auto info = load_file_info(path.string());
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->file_id, 5u);
  EXPECT_EQ(info->message_digests.size(), enc.k());
  std::remove(path.string().c_str());
}

TEST(Persistence, RestartedPeerStillServesDecodableMessages) {
  // Full loop: encode -> store -> save -> load ("restart") -> decode.
  sim::SplitMix64 rng(2);
  std::vector<std::byte> data(4000);
  for (auto& b : data) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  coding::SecretKey secret{};
  secret[0] = 9;
  coding::FileEncoder enc(secret, 3, data, {gf::FieldId::gf2_32, 64});

  MessageStore store;
  for (auto& m : enc.generate(enc.k())) store.store(std::move(m));
  const auto reborn = deserialize_store(serialize_store(store));
  ASSERT_TRUE(reborn.has_value());

  coding::FileDecoder dec(secret, enc.info());
  for (std::size_t i = 0; i < reborn->count(3); ++i) dec.add(reborn->at(3, i));
  ASSERT_TRUE(dec.complete());
  EXPECT_EQ(dec.reconstruct(), data);
}

}  // namespace
}  // namespace fairshare::p2p
