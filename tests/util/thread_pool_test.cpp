// Thread pool and parallel row kernels.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "linalg/parallel_ops.hpp"
#include "linalg/progressive.hpp"
#include "sim/rng.hpp"
#include "util/thread_pool.hpp"

namespace fairshare {
namespace {

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroJobsIsNoOp) {
  util::ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  util::ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&](std::size_t i) {
    sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, ReusableAcrossManyRounds) {
  util::ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(17, [&](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 17) << "round " << round;
  }
}

TEST(ThreadPool, SubmitRunsEveryDetachedTask) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 3u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) pool.submit([&] { ++ran; });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (ran.load() < 64 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, SubmitCoexistsWithParallelFor) {
  util::ThreadPool pool(4);
  std::atomic<int> tasks{0};
  std::atomic<bool> release{false};
  // Two long-lived tasks occupy workers while parallel_for still completes
  // (the caller participates, so it cannot starve).
  for (int i = 0; i < 2; ++i)
    pool.submit([&] {
      while (!release.load()) std::this_thread::sleep_for(
          std::chrono::milliseconds(1));
      ++tasks;
    });
  std::atomic<int> jobs{0};
  pool.parallel_for(100, [&](std::size_t) { ++jobs; });
  EXPECT_EQ(jobs.load(), 100);
  release = true;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (tasks.load() < 2 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(tasks.load(), 2);
}

TEST(ThreadPool, JobsSeeDistinctIndices) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(64);
  pool.parallel_for(64, [&](std::size_t i) { seen[i] = static_cast<int>(i); });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

class ParallelOpsTest : public ::testing::TestWithParam<gf::FieldId> {};

TEST_P(ParallelOpsTest, ParallelAxpyMatchesSerial) {
  const auto& f = gf::field_view(GetParam());
  util::ThreadPool pool(4);
  sim::SplitMix64 rng(1);
  const std::size_t n = 100000;  // above the serial threshold
  std::vector<std::byte> dst_p(f.row_bytes(n)), dst_s(f.row_bytes(n)),
      src(f.row_bytes(n));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = rng.next() & (f.order - 1);
    const std::uint64_t b = rng.next() & (f.order - 1);
    f.set(dst_p.data(), i, a);
    f.set(dst_s.data(), i, a);
    f.set(src.data(), i, b);
  }
  const std::uint64_t c = 0x5A5A5A5A & (f.order - 1);
  f.axpy(dst_s.data(), src.data(), c ? c : 3, n);
  linalg::parallel_axpy(f, dst_p.data(), src.data(), c ? c : 3, n, &pool);
  EXPECT_EQ(dst_p, dst_s);
}

TEST_P(ParallelOpsTest, ParallelScaleMatchesSerial) {
  const auto& f = gf::field_view(GetParam());
  util::ThreadPool pool(3);
  sim::SplitMix64 rng(2);
  const std::size_t n = 50000;
  std::vector<std::byte> row_p(f.row_bytes(n)), row_s(f.row_bytes(n));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = rng.next() & (f.order - 1);
    f.set(row_p.data(), i, v);
    f.set(row_s.data(), i, v);
  }
  std::uint64_t c = 0x1234567 & (f.order - 1);
  if (c == 0) c = 5;
  f.scale(row_s.data(), c, n);
  linalg::parallel_scale(f, row_p.data(), c, n, &pool);
  EXPECT_EQ(row_p, row_s);
}

INSTANTIATE_TEST_SUITE_P(AllFields, ParallelOpsTest,
                         ::testing::Values(gf::FieldId::gf2_4,
                                           gf::FieldId::gf2_8,
                                           gf::FieldId::gf2_16,
                                           gf::FieldId::gf2_32));

TEST(ParallelSolver, PooledSolverMatchesSerialSolver) {
  const auto field = gf::FieldId::gf2_32;
  const auto& f = gf::field_view(field);
  const std::size_t k = 8, m = 8192;
  sim::SplitMix64 rng(3);

  // Random chunks + random coefficient rows.
  std::vector<std::vector<std::byte>> chunks(k), coeffs(2 * k),
      payloads(2 * k);
  for (auto& ch : chunks) {
    ch.resize(f.row_bytes(m));
    for (std::size_t i = 0; i < m; ++i)
      f.set(ch.data(), i, rng.next() & (f.order - 1));
  }
  for (std::size_t r = 0; r < coeffs.size(); ++r) {
    coeffs[r].assign(f.row_bytes(k), std::byte{0});
    payloads[r].assign(f.row_bytes(m), std::byte{0});
    for (std::size_t j = 0; j < k; ++j) {
      const std::uint64_t b = rng.next() & (f.order - 1);
      f.set(coeffs[r].data(), j, b);
      f.axpy(payloads[r].data(), chunks[j].data(), b, m);
    }
  }

  util::ThreadPool pool(4);
  linalg::ProgressiveSolver serial(field, k, m);
  linalg::ProgressiveSolver pooled(field, k, m);
  pooled.set_thread_pool(&pool);
  for (std::size_t r = 0; r < coeffs.size(); ++r) {
    const bool a = serial.add_row(coeffs[r].data(), payloads[r].data());
    const bool b = pooled.add_row(coeffs[r].data(), payloads[r].data());
    EXPECT_EQ(a, b) << "row " << r;
  }
  ASSERT_TRUE(serial.complete());
  ASSERT_TRUE(pooled.complete());
  for (std::size_t i = 0; i < k; ++i)
    EXPECT_EQ(std::memcmp(serial.chunk(i), pooled.chunk(i), f.row_bytes(m)),
              0);
}

}  // namespace
}  // namespace fairshare
