// Unit behavior of every allocation policy, checked against the closed
// forms of Equations (2) and (3).
#include <gtest/gtest.h>

#include <vector>

#include "alloc/policies.hpp"

namespace fairshare::alloc {
namespace {

PeerContext context(std::size_t self, double capacity,
                    const std::vector<std::uint8_t>& requesting,
                    const std::vector<double>& declared) {
  PeerContext ctx;
  ctx.self = self;
  ctx.slot = 0;
  ctx.capacity = capacity;
  ctx.requesting = requesting;
  ctx.declared = declared;
  return ctx;
}

TEST(ProportionalContribution, EqualSeedGivesEqualSplit) {
  ProportionalContributionPolicy policy(3, 1.0);
  const std::vector<std::uint8_t> req{1, 1, 1};
  const std::vector<double> decl{100, 100, 100};
  std::vector<double> out(3);
  policy.allocate(context(0, 300, req, decl), out);
  EXPECT_DOUBLE_EQ(out[0], 100);
  EXPECT_DOUBLE_EQ(out[1], 100);
  EXPECT_DOUBLE_EQ(out[2], 100);
}

TEST(ProportionalContribution, ProportionalToLedger) {
  ProportionalContributionPolicy policy(3, 1.0);
  // Feed one slot of feedback: peer 1 contributed 9, peer 2 contributed 0.
  // Ledger becomes {1, 10, 1}.
  const std::vector<double> received{0.0, 9.0, 0.0};
  SlotFeedback fb;
  fb.slot = 0;
  fb.received = received;
  policy.observe(fb);

  const std::vector<std::uint8_t> req{0, 1, 1};
  const std::vector<double> decl{0, 0, 0};
  std::vector<double> out(3);
  policy.allocate(context(0, 110, req, decl), out);
  // Equation (2): shares 10/11 and 1/11 of 110.
  EXPECT_DOUBLE_EQ(out[0], 0);
  EXPECT_DOUBLE_EQ(out[1], 100);
  EXPECT_DOUBLE_EQ(out[2], 10);
}

TEST(ProportionalContribution, OnlyRequestersGetBandwidth) {
  ProportionalContributionPolicy policy(4, 1.0);
  const std::vector<std::uint8_t> req{0, 1, 0, 0};
  const std::vector<double> decl(4, 0.0);
  std::vector<double> out(4);
  policy.allocate(context(0, 100, req, decl), out);
  EXPECT_DOUBLE_EQ(out[0], 0);
  EXPECT_DOUBLE_EQ(out[1], 100);  // sole requester gets everything
  EXPECT_DOUBLE_EQ(out[2], 0);
  EXPECT_DOUBLE_EQ(out[3], 0);
}

TEST(ProportionalContribution, NoRequestersNoAllocation) {
  ProportionalContributionPolicy policy(2, 1.0);
  const std::vector<std::uint8_t> req{0, 0};
  const std::vector<double> decl(2, 0.0);
  std::vector<double> out(2);
  policy.allocate(context(0, 100, req, decl), out);
  EXPECT_DOUBLE_EQ(out[0] + out[1], 0);
}

TEST(ProportionalContribution, LedgerAccumulatesAcrossSlots) {
  ProportionalContributionPolicy policy(2, 1.0);
  for (int t = 0; t < 5; ++t) {
    const std::vector<double> received{2.0, 3.0};
    SlotFeedback fb;
    fb.slot = static_cast<std::uint64_t>(t);
    fb.received = received;
    policy.observe(fb);
  }
  EXPECT_DOUBLE_EQ(policy.ledger()[0], 1.0 + 10.0);
  EXPECT_DOUBLE_EQ(policy.ledger()[1], 1.0 + 15.0);
}

TEST(DecayingContribution, ForgetsOldContributions) {
  DecayingContributionPolicy policy(2, 0.5, 1.0);
  // One big early contribution from peer 0, then silence.
  {
    const std::vector<double> received{100.0, 0.0};
    SlotFeedback fb;
    fb.received = received;
    policy.observe(fb);
  }
  for (int t = 0; t < 20; ++t) {
    const std::vector<double> received{0.0, 1.0};
    SlotFeedback fb;
    fb.received = received;
    policy.observe(fb);
  }
  // Peer 0's credit decayed to ~100 * 0.5^20 ~ 0; peer 1's steady trickle
  // dominates.
  EXPECT_LT(policy.ledger()[0], 0.01);
  EXPECT_GT(policy.ledger()[1], 1.9);
}

TEST(DeclaredProportional, MatchesEquationThree) {
  DeclaredProportionalPolicy policy;
  const std::vector<std::uint8_t> req{1, 1, 0};
  const std::vector<double> decl{100, 300, 500};
  std::vector<double> out(3);
  policy.allocate(context(0, 400, req, decl), out);
  EXPECT_DOUBLE_EQ(out[0], 100);  // 400 * 100/400
  EXPECT_DOUBLE_EQ(out[1], 300);  // 400 * 300/400
  EXPECT_DOUBLE_EQ(out[2], 0);
}

TEST(DeclaredProportional, LiarGainsShare) {
  // The Section IV-B flaw: inflating declared capacity raises one's share.
  DeclaredProportionalPolicy policy;
  const std::vector<std::uint8_t> req{1, 1};
  std::vector<double> out(2);
  policy.allocate(context(0, 100, req, {100, 100}), out);
  const double honest = out[1];
  policy.allocate(context(0, 100, req, {100, 900}), out);
  EXPECT_GT(out[1], honest);
}

TEST(EqualSplit, DividesEvenlyAmongRequesters) {
  EqualSplitPolicy policy;
  const std::vector<std::uint8_t> req{1, 0, 1, 1};
  const std::vector<double> decl(4, 0.0);
  std::vector<double> out(4);
  policy.allocate(context(0, 90, req, decl), out);
  EXPECT_DOUBLE_EQ(out[0], 30);
  EXPECT_DOUBLE_EQ(out[1], 0);
  EXPECT_DOUBLE_EQ(out[2], 30);
  EXPECT_DOUBLE_EQ(out[3], 30);
}

TEST(FreeRider, AllocatesNothing) {
  FreeRiderPolicy policy;
  const std::vector<std::uint8_t> req{1, 1};
  const std::vector<double> decl(2, 0.0);
  std::vector<double> out{5.0, 5.0};
  policy.allocate(context(0, 100, req, decl), out);
  EXPECT_DOUBLE_EQ(out[0], 0);
  EXPECT_DOUBLE_EQ(out[1], 0);
}

TEST(SelfOnly, ServesOnlyItself) {
  SelfOnlyPolicy policy;
  const std::vector<std::uint8_t> req{1, 1, 1};
  const std::vector<double> decl(3, 0.0);
  std::vector<double> out(3);
  policy.allocate(context(1, 100, req, decl), out);
  EXPECT_DOUBLE_EQ(out[0], 0);
  EXPECT_DOUBLE_EQ(out[1], 100);
  EXPECT_DOUBLE_EQ(out[2], 0);
}

TEST(SelfOnly, IdleSelfMeansNoAllocation) {
  SelfOnlyPolicy policy;
  const std::vector<std::uint8_t> req{1, 0, 1};
  const std::vector<double> decl(3, 0.0);
  std::vector<double> out(3);
  policy.allocate(context(1, 100, req, decl), out);
  EXPECT_DOUBLE_EQ(out[0] + out[1] + out[2], 0);
}

TEST(Coalition, SplitsAmongRequestingMembersOnly) {
  CoalitionPolicy policy({0, 2});
  const std::vector<std::uint8_t> req{1, 1, 1, 1};
  const std::vector<double> decl(4, 0.0);
  std::vector<double> out(4);
  policy.allocate(context(3, 100, req, decl), out);
  EXPECT_DOUBLE_EQ(out[0], 50);
  EXPECT_DOUBLE_EQ(out[1], 0);
  EXPECT_DOUBLE_EQ(out[2], 50);
  EXPECT_DOUBLE_EQ(out[3], 0);
}

TEST(Coalition, IdleCoalitionAllocatesNothing) {
  CoalitionPolicy policy({0, 2});
  const std::vector<std::uint8_t> req{0, 1, 0, 1};
  const std::vector<double> decl(4, 0.0);
  std::vector<double> out(4);
  policy.allocate(context(3, 100, req, decl), out);
  EXPECT_DOUBLE_EQ(out[0] + out[1] + out[2] + out[3], 0);
}

}  // namespace
}  // namespace fairshare::alloc
