// FederatedLedger: the CRDT the federation gossips.  Max-merge over
// (user, origin) keyed totals must form a join semilattice — idempotent,
// commutative, associative, monotone — or anti-entropy would never
// converge; swarm_total must exclude the asking origin so a server never
// double-counts its own local measurement.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <thread>
#include <vector>

#include "alloc/federated_ledger.hpp"
#include "sim/rng.hpp"

namespace fairshare::alloc {
namespace {

std::vector<FederatedLedger::Entry> random_entries(std::uint64_t seed,
                                                   std::size_t count) {
  sim::SplitMix64 rng(seed);
  std::vector<FederatedLedger::Entry> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({rng.next_below(5), rng.next_below(4),
                   static_cast<double>(rng.next_below(1000))});
  }
  return out;
}

TEST(FederatedLedger, RecordKeepsMaximum) {
  FederatedLedger ledger;
  EXPECT_TRUE(ledger.record(1, 10, 100.0));
  EXPECT_FALSE(ledger.record(1, 10, 50.0));  // regressions are ignored
  EXPECT_FALSE(ledger.record(1, 10, 100.0));  // equal is a no-op
  EXPECT_TRUE(ledger.record(1, 10, 150.0));
  const auto snap = ledger.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_DOUBLE_EQ(snap[0].total, 150.0);
}

TEST(FederatedLedger, SwarmTotalExcludesAskingOrigin) {
  FederatedLedger ledger;
  ledger.record(7, /*origin=*/1, 100.0);
  ledger.record(7, /*origin=*/2, 40.0);
  ledger.record(7, /*origin=*/3, 2.0);
  ledger.record(8, /*origin=*/1, 999.0);  // different user, ignored
  EXPECT_DOUBLE_EQ(ledger.swarm_total(7, /*exclude=*/1), 42.0);
  EXPECT_DOUBLE_EQ(ledger.swarm_total(7, /*exclude=*/2), 102.0);
  EXPECT_DOUBLE_EQ(ledger.swarm_total(7, /*exclude=*/99), 142.0);
  EXPECT_DOUBLE_EQ(ledger.swarm_total(12345, 1), 0.0);
}

TEST(FederatedLedger, MergeIsIdempotent) {
  FederatedLedger ledger;
  const auto entries = random_entries(1, 64);
  ledger.merge(entries);
  const auto once = ledger.snapshot();
  EXPECT_EQ(ledger.merge(entries), 0u);  // nothing grows the second time
  EXPECT_EQ(ledger.snapshot(), once);
}

TEST(FederatedLedger, MergeIsCommutativeAndAssociative) {
  const auto a = random_entries(2, 48);
  const auto b = random_entries(3, 48);
  const auto c = random_entries(4, 48);

  FederatedLedger abc, cba, a_bc;
  abc.merge(a);
  abc.merge(b);
  abc.merge(c);
  cba.merge(c);
  cba.merge(b);
  cba.merge(a);
  // (a ∨ b) ∨ c via a pre-merged intermediate.
  FederatedLedger bc;
  bc.merge(b);
  bc.merge(c);
  a_bc.merge(a);
  a_bc.merge(bc.snapshot());
  EXPECT_EQ(abc.snapshot(), cba.snapshot());
  EXPECT_EQ(abc.snapshot(), a_bc.snapshot());
}

TEST(FederatedLedger, MergeDropsPoisonEntries) {
  FederatedLedger ledger;
  std::vector<FederatedLedger::Entry> poison = {
      {1, 1, -5.0},
      {1, 2, std::numeric_limits<double>::quiet_NaN()},
      {1, 3, std::numeric_limits<double>::infinity()},
      {1, 4, 10.0},  // the one valid row
  };
  EXPECT_EQ(ledger.merge(poison), 1u);
  EXPECT_EQ(ledger.size(), 1u);
  EXPECT_DOUBLE_EQ(ledger.swarm_total(1, 99), 10.0);
}

TEST(FederatedLedger, AntiEntropyConvergesAllReplicas) {
  // N replicas each record disjoint local history, then pairwise-exchange
  // snapshots in a ring; after one full round-trip every replica holds
  // the same join.
  constexpr std::size_t kReplicas = 5;
  std::vector<FederatedLedger> replicas(kReplicas);
  for (std::size_t r = 0; r < kReplicas; ++r)
    for (std::uint64_t user = 0; user < 3; ++user)
      replicas[r].record(user, /*origin=*/r, 100.0 * (r + 1) + user);

  for (std::size_t round = 0; round < 2 * kReplicas; ++round) {
    const std::size_t from = round % kReplicas;
    const std::size_t to = (round + 1) % kReplicas;
    replicas[to].merge(replicas[from].snapshot());
  }
  const auto reference = replicas[0].snapshot();
  EXPECT_EQ(reference.size(), kReplicas * 3);
  for (const FederatedLedger& r : replicas) EXPECT_EQ(r.snapshot(), reference);
}

TEST(FederatedLedger, ConcurrentRecordAndMergeKeepMaxima) {
  // TSan-facing: writers race record() against merge() of a snapshot
  // taken mid-flight; the final state must still be the pointwise max.
  FederatedLedger ledger;
  constexpr int kWriters = 4;
  constexpr int kSteps = 400;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&ledger, w] {
      for (int i = 1; i <= kSteps; ++i)
        ledger.record(/*user=*/w, /*origin=*/1, static_cast<double>(i));
    });
  }
  threads.emplace_back([&ledger] {
    for (int i = 0; i < 50; ++i) ledger.merge(ledger.snapshot());
  });
  for (std::thread& t : threads) t.join();
  for (int w = 0; w < kWriters; ++w)
    EXPECT_DOUBLE_EQ(ledger.swarm_total(w, /*exclude=*/0),
                     static_cast<double>(kSteps));
}

}  // namespace
}  // namespace fairshare::alloc
