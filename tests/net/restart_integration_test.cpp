// Cross-module integration: a peer persists its store to disk, "restarts"
// (fresh server from the saved bytes), and serves a real TCP download; the
// user's metadata likewise round-trips through disk.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "coding/encoder.hpp"
#include "net/download_client.hpp"
#include "net/peer_server.hpp"
#include "p2p/persistence.hpp"
#include "sim/rng.hpp"

namespace fairshare {
namespace {

TEST(RestartIntegration, PeerServesFromReloadedStore) {
  // Owner encodes and hands a peer its messages.
  sim::SplitMix64 rng(5);
  std::vector<std::byte> file(40000);
  for (auto& b : file) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  coding::SecretKey secret{};
  secret[0] = 31;
  const coding::CodingParams params{gf::FieldId::gf2_32, 256};
  coding::FileEncoder encoder(secret, 11, file, params);

  p2p::MessageStore store;
  for (auto& m : encoder.generate(encoder.k())) store.store(std::move(m));

  // Persist peer store and user metadata to disk.
  const auto dir = std::filesystem::temp_directory_path();
  const auto store_path = (dir / "fs_restart_store.bin").string();
  const auto info_path = (dir / "fs_restart_info.bin").string();
  ASSERT_TRUE(p2p::save_store(store, store_path));
  ASSERT_TRUE(p2p::save_file_info(encoder.info(), info_path));

  // "Restart": everything below uses only the files on disk + the secret.
  auto reloaded = p2p::load_store(store_path);
  ASSERT_TRUE(reloaded.has_value());
  auto info = p2p::load_file_info(info_path);
  ASSERT_TRUE(info.has_value());

  net::PeerServer::Config config;
  config.require_auth = false;
  net::PeerServer server(config, std::move(*reloaded));
  ASSERT_TRUE(server.start());

  net::PeerEndpoint endpoint;
  endpoint.port = server.port();
  net::DownloadOptions options;
  const net::DownloadReport report =
      net::download_file({endpoint}, secret, *info, options);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.data, file);
  server.stop();

  std::remove(store_path.c_str());
  std::remove(info_path.c_str());
}

}  // namespace
}  // namespace fairshare
