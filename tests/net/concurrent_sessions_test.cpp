// Concurrent sessions on ONE PeerServer: several authenticated users are
// served simultaneously, and the pacing scheduler divides the server's
// uplink between them by Equation (2) — per-user rates proportional to the
// contribution ledgers, measured over real TCP.
//
// The server runs the build/env default backend (the epoll reactor where
// available), so these are also the reactor's handshake/pacing/stop
// integration tests; FAIRSHARE_NET_BACKEND=threads covers the blocking
// twin, and tests/net/session_soak_test.cpp pushes the same assertions
// to 512-way concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <latch>
#include <thread>
#include <vector>

#include "coding/encoder.hpp"
#include "crypto/auth.hpp"
#include "crypto/chacha20.hpp"
#include "net/download_client.hpp"
#include "net/peer_server.hpp"
#include "p2p/wire.hpp"
#include "sim/rng.hpp"

namespace fairshare::net {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kFileId = 42;
const coding::CodingParams kParams{gf::FieldId::gf2_32, 256};  // 1 KiB msgs

std::vector<std::byte> blob(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

// A store with `count` coded messages of one 20 kB file (k = 20, so any 20
// of them decode; the tests below mostly count frames rather than decode).
p2p::MessageStore make_store(const coding::SecretKey& secret,
                             const std::vector<std::byte>& data,
                             std::size_t count) {
  coding::FileEncoder encoder(secret, kFileId, data, kParams);
  p2p::MessageStore store;
  for (auto& m : encoder.generate(count)) store.store(std::move(m));
  return store;
}

crypto::ChaCha20 rng_for(std::uint8_t tag) {
  std::array<std::uint8_t, 32> key{};
  key[0] = tag;
  std::array<std::uint8_t, 12> nonce{};
  return crypto::ChaCha20(key, nonce, 0);
}

// Client side of the Figure 4(b) handshake, by hand (the production path
// lives in download_client.cpp; here each session needs its own pacing
// observation window, so the frames are consumed raw).
bool handshake(Socket& socket, std::uint64_t user_id,
               const crypto::RsaKeyPair& user_key,
               const crypto::RsaPublicKey& peer_identity, std::uint64_t seed) {
  crypto::ChaCha20 rng = rng_for(static_cast<std::uint8_t>(seed));
  crypto::AuthInitiator initiator(user_id, user_key, peer_identity, rng);
  if (!send_frame(socket, p2p::wire::encode(initiator.hello()))) return false;
  const auto challenge_frame = recv_frame(socket, 1 << 16);
  if (!challenge_frame) return false;
  const auto challenge = p2p::wire::decode_auth_challenge(*challenge_frame);
  if (!challenge) return false;
  const auto response = initiator.on_challenge(*challenge);
  if (!response) return false;
  return send_frame(socket, p2p::wire::encode(*response));
}

bool send_request(Socket& socket, std::uint64_t user_id) {
  p2p::wire::FileRequest request;
  request.user_id = user_id;
  request.file_id = kFileId;
  return send_frame(socket, p2p::wire::encode(request));
}

void send_stop(Socket& socket, std::uint64_t user_id) {
  p2p::wire::StopTransmission stop;
  stop.user_id = user_id;
  stop.file_id = kFileId;
  (void)send_frame(socket, p2p::wire::encode(stop));
}

// Read coded frames until the peer closes (post-stop drain).
void drain(Socket& socket) {
  const auto deadline = Clock::now() + std::chrono::seconds(2);
  while (Clock::now() < deadline) {
    const auto frame = recv_frame(socket, 64 << 20);
    if (!frame && !socket.timed_out()) return;  // closed
  }
}

TEST(ConcurrentSessions, RatesFollowSeededContributionLedgers) {
  const auto data = blob(20000, 7);
  coding::SecretKey secret{};
  secret[0] = 9;

  crypto::ChaCha20 krng = rng_for(11);
  const crypto::RsaKeyPair peer_key = crypto::RsaKeyPair::generate(512, krng);
  const crypto::RsaKeyPair key_a = crypto::RsaKeyPair::generate(512, krng);
  const crypto::RsaKeyPair key_b = crypto::RsaKeyPair::generate(512, krng);

  PeerServer::Config config;
  config.require_auth = true;
  config.peer_id = 1;
  config.rate_kbps = 4000.0;  // mu_i, divided by Eq. (2) each quantum
  PeerServer server(config, make_store(secret, data, 900), peer_key);
  server.register_user(1, key_a.pub);
  server.register_user(2, key_b.pub);
  // User 1 has contributed 3x what user 2 has: Eq. (2) must grant 3:1.
  server.seed_contribution(1, 3e6);
  server.seed_contribution(2, 1e6);
  ASSERT_TRUE(server.start());

  constexpr auto kWindow = std::chrono::milliseconds(1000);
  std::latch request_gate(2);
  std::atomic<std::uint64_t> bytes_a{0}, bytes_b{0};
  std::atomic<bool> early_progress_a{false}, early_progress_b{false};
  std::atomic<int> failures{0};

  auto client = [&](std::uint64_t user_id, const crypto::RsaKeyPair& key,
                    std::atomic<std::uint64_t>& bytes,
                    std::atomic<bool>& early_progress) {
    auto socket = Socket::connect_to("127.0.0.1", server.port());
    if (!socket || !handshake(*socket, user_id, key, peer_key.pub, user_id)) {
      ++failures;
      request_gate.count_down();
      return;
    }
    socket->set_recv_timeout(20);
    request_gate.arrive_and_wait();  // both sessions stream simultaneously
    if (!send_request(*socket, user_id)) {
      ++failures;
      return;
    }
    const auto start = Clock::now();
    while (Clock::now() - start < kWindow) {
      const auto frame = recv_frame(*socket, 64 << 20);
      if (!frame) {
        if (socket->timed_out()) continue;
        ++failures;  // the store is big enough that EOF here is a bug
        return;
      }
      bytes += frame->size();
      if (Clock::now() - start < std::chrono::milliseconds(500))
        early_progress = true;
    }
    send_stop(*socket, user_id);
    drain(*socket);
  };

  std::thread ta(client, 1, std::cref(key_a), std::ref(bytes_a),
                 std::ref(early_progress_a));
  std::thread tb(client, 2, std::cref(key_b), std::ref(bytes_b),
                 std::ref(early_progress_b));

  // Mid-window, both sessions must be in flight at once.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_EQ(server.active_sessions(), 2u);

  ta.join();
  tb.join();
  ASSERT_EQ(failures.load(), 0);

  // Both users made progress immediately — neither waited for the other.
  EXPECT_TRUE(early_progress_a.load());
  EXPECT_TRUE(early_progress_b.load());
  EXPECT_GE(server.peak_sessions(), 2u);

  // Measured rates within 15% of the Eq. (2) split (3:1 of 4000 kbps).
  const double window_s =
      std::chrono::duration<double>(kWindow).count();
  const double kbps_a = bytes_a.load() * 8.0 / 1000.0 / window_s;
  const double kbps_b = bytes_b.load() * 8.0 / 1000.0 / window_s;
  EXPECT_NEAR(kbps_a / 3000.0, 1.0, 0.15) << "user 1 measured " << kbps_a;
  EXPECT_NEAR(kbps_b / 1000.0, 1.0, 0.15) << "user 2 measured " << kbps_b;

  // Server-side observability agrees with the client-side measurement.
  EXPECT_GE(server.user_bytes_sent(1), bytes_a.load());
  EXPECT_GE(server.user_bytes_sent(2), bytes_b.load());
  const auto snapshot = server.allocation_snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  server.stop();
}

TEST(ConcurrentSessions, TwoFullDownloadsShareOneServer) {
  const auto data = blob(20000, 8);
  coding::SecretKey secret{};
  secret[0] = 10;

  crypto::ChaCha20 krng = rng_for(12);
  const crypto::RsaKeyPair peer_key = crypto::RsaKeyPair::generate(512, krng);
  const crypto::RsaKeyPair key_a = crypto::RsaKeyPair::generate(512, krng);
  const crypto::RsaKeyPair key_b = crypto::RsaKeyPair::generate(512, krng);

  coding::FileEncoder encoder(secret, kFileId, data, kParams);
  p2p::MessageStore store;
  for (auto& m : encoder.generate(60)) store.store(std::move(m));
  const coding::FileInfo info = encoder.info();  // digests cover the store

  PeerServer::Config config;
  config.require_auth = true;
  config.peer_id = 2;
  config.rate_kbps = 2000.0;
  PeerServer server(config, std::move(store), peer_key);
  server.register_user(1, key_a.pub);
  server.register_user(2, key_b.pub);
  ASSERT_TRUE(server.start());

  PeerEndpoint endpoint;
  endpoint.port = server.port();
  endpoint.peer_id = 2;
  endpoint.identity = peer_key.pub;

  DownloadReport report_a, report_b;
  std::thread ta([&] {
    DownloadOptions options;
    options.user_id = 1;
    options.user_key = &key_a;
    report_a = download_file({endpoint}, secret, info, options);
  });
  std::thread tb([&] {
    DownloadOptions options;
    options.user_id = 2;
    options.user_key = &key_b;
    report_b = download_file({endpoint}, secret, info, options);
  });
  ta.join();
  tb.join();

  EXPECT_TRUE(report_a.success);
  EXPECT_TRUE(report_b.success);
  EXPECT_EQ(report_a.data, data);
  EXPECT_EQ(report_b.data, data);
  // The old server served one session at a time; now both were in flight.
  EXPECT_GE(server.peak_sessions(), 2u);
  EXPECT_EQ(server.auth_rejections(), 0u);
  server.stop();
}

TEST(ConcurrentSessions, StopFrameHaltsPacedStreamMidFile) {
  const auto data = blob(20000, 9);
  coding::SecretKey secret{};
  secret[0] = 11;

  PeerServer::Config config;
  config.require_auth = false;
  config.rate_kbps = 800.0;  // ~2 s to drain the whole store
  PeerServer server(config, make_store(secret, data, 200));
  ASSERT_TRUE(server.start());

  auto socket = Socket::connect_to("127.0.0.1", server.port());
  ASSERT_TRUE(socket.has_value());
  socket->set_recv_timeout(100);
  ASSERT_TRUE(send_request(*socket, 5));
  for (int i = 0; i < 5; ++i) {
    std::optional<std::vector<std::byte>> frame;
    do {
      frame = recv_frame(*socket, 64 << 20);
    } while (!frame && socket->timed_out());
    ASSERT_TRUE(frame.has_value()) << "stream ended before frame " << i;
  }
  send_stop(*socket, 5);
  drain(*socket);

  // The server must notice the stop promptly, well short of the file end.
  const auto deadline = Clock::now() + std::chrono::seconds(3);
  while (server.sessions_completed() == 0 && Clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(server.sessions_completed(), 1u);
  EXPECT_GE(server.messages_sent(), 5u);
  EXPECT_LT(server.messages_sent(), 100u);
  server.stop();
}

TEST(ConcurrentSessions, MaxSessionsBoundRejectsExtraConnections) {
  const auto data = blob(20000, 10);
  coding::SecretKey secret{};
  secret[0] = 12;

  PeerServer::Config config;
  config.require_auth = false;
  config.rate_kbps = 500.0;
  config.max_sessions = 1;
  PeerServer server(config, make_store(secret, data, 200));
  ASSERT_TRUE(server.start());

  auto first = Socket::connect_to("127.0.0.1", server.port());
  ASSERT_TRUE(first.has_value());
  first->set_recv_timeout(100);
  ASSERT_TRUE(send_request(*first, 1));
  std::optional<std::vector<std::byte>> frame;
  do {
    frame = recv_frame(*first, 64 << 20);
  } while (!frame && first->timed_out());
  ASSERT_TRUE(frame.has_value());  // session 1 is mid-stream

  auto second = Socket::connect_to("127.0.0.1", server.port());
  ASSERT_TRUE(second.has_value());  // TCP accept queue takes it...
  const auto deadline = Clock::now() + std::chrono::seconds(2);
  while (server.sessions_rejected() == 0 && Clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(server.sessions_rejected(), 1u);  // ...but the server drops it

  send_stop(*first, 1);
  drain(*first);
  server.stop();
}

}  // namespace
}  // namespace fairshare::net
