// Reactor-vs-threads serve parity: the byte stream a client receives from
// the epoll backend's zero-copy scatter-gather path (try_write_frame_ext,
// arena heads, payload referenced in the MessageStore) must be identical
// to the copying path of the threads backend — frame for frame, byte for
// byte.  Also under a seeded server-side FaultyTransport: the fault
// schedule is a pure function of the seed and the frame sequence, so even
// the corrupted/duplicated/dropped streams must agree across backends.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "coding/encoder.hpp"
#include "net/fault_transport.hpp"
#include "net/peer_server.hpp"
#include "net/socket.hpp"
#include "p2p/store.hpp"
#include "p2p/wire.hpp"
#include "sim/rng.hpp"

namespace fairshare::net {
namespace {

constexpr std::uint64_t kFileId = 42;

std::vector<std::byte> blob(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

/// One screened message pool both servers serve verbatim, so any byte
/// difference between backends is the serve path's fault.
std::vector<coding::EncodedMessage> make_pool() {
  coding::SecretKey secret{};
  secret[0] = 21;
  const auto data = blob(40000, 0xFEED);
  coding::FileEncoder encoder(secret, kFileId, data,
                              coding::CodingParams{gf::FieldId::gf2_16, 256});
  return encoder.generate(encoder.k());
}

p2p::MessageStore store_of(const std::vector<coding::EncodedMessage>& pool) {
  p2p::MessageStore store;
  for (const auto& m : pool) store.store(coding::EncodedMessage(m));
  return store;
}

/// Request the file and drain the whole stream until the server closes,
/// returning the raw frames in arrival order.
std::vector<std::vector<std::byte>> drain_stream(std::uint16_t port) {
  auto client = Socket::connect_to("127.0.0.1", port);
  EXPECT_TRUE(client.has_value());
  if (!client) return {};
  p2p::wire::FileRequest request;
  request.user_id = 7;
  request.file_id = kFileId;
  request.max_rate_kbps = 0.0;
  EXPECT_TRUE(send_frame(*client, p2p::wire::encode(request)));
  client->set_recv_timeout(2000);
  std::vector<std::vector<std::byte>> frames;
  for (;;) {
    auto frame = recv_frame(*client, 1u << 20);
    if (!frame) break;
    frames.push_back(std::move(*frame));
  }
  return frames;
}

std::vector<std::vector<std::byte>> serve_once(
    NetBackend backend, const std::vector<coding::EncodedMessage>& pool,
    const std::optional<FaultPlan>& plan, FaultStats* stats_out = nullptr) {
  PeerServer::Config config;
  config.require_auth = false;
  config.backend = backend;
  std::shared_ptr<FaultInjector> injector;
  if (plan) {
    injector = std::make_shared<FaultInjector>(*plan);
    config.transport_wrapper = [injector](std::unique_ptr<Transport> inner) {
      return injector->wrap(std::move(inner));
    };
  }
  PeerServer server(config, store_of(pool));
  EXPECT_TRUE(server.start());
  EXPECT_EQ(server.backend(), backend);
  auto frames = drain_stream(server.port());
  server.stop();
  if (stats_out && injector) *stats_out = injector->stats();
  return frames;
}

TEST(ServeParity, ReactorMatchesThreadsByteForByte) {
  const auto pool = make_pool();
  const auto reactor = serve_once(NetBackend::epoll, pool, std::nullopt);
  const auto threads = serve_once(NetBackend::threads, pool, std::nullopt);

  // Clean wire: both backends deliver the verbatim store, and the zero-
  // copy frames are byte-identical to the copying encoder's output.
  ASSERT_EQ(reactor.size(), pool.size());
  ASSERT_EQ(threads.size(), pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(reactor[i], p2p::wire::encode(pool[i])) << "frame " << i;
    EXPECT_EQ(reactor[i], threads[i]) << "frame " << i;
  }
}

TEST(ServeParity, FaultedStreamsAgreeAcrossBackends) {
  // Same plan seed on both backends => same per-frame fault draws (the
  // request is frame 1; the stream follows in order) => the received
  // streams must match even though frames are mangled, duplicated, and
  // dropped in transit.  This pins the FaultyTransport materialisation of
  // try_write_frame_ext to one budget charge and one draw per frame.
  const auto pool = make_pool();
  FaultStats total;
  std::size_t frames_seen = 0;
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    FaultPlan plan;
    plan.seed = seed;
    plan.corrupt_rate = 0.20;
    plan.duplicate_rate = 0.20;
    plan.drop_rate = 0.10;
    plan.delay_rate = 0.10;
    plan.delay_ms = 1;
    FaultStats rs, ts;
    const auto reactor = serve_once(NetBackend::epoll, pool, plan, &rs);
    const auto threads = serve_once(NetBackend::threads, pool, plan, &ts);
    ASSERT_EQ(reactor.size(), threads.size()) << "seed " << seed;
    for (std::size_t i = 0; i < reactor.size(); ++i)
      ASSERT_EQ(reactor[i], threads[i]) << "seed " << seed << " frame " << i;
    // Identical schedules on identical traffic: the stats must agree too.
    EXPECT_EQ(rs.frames_dropped, ts.frames_dropped) << "seed " << seed;
    EXPECT_EQ(rs.frames_corrupted, ts.frames_corrupted) << "seed " << seed;
    EXPECT_EQ(rs.frames_duplicated, ts.frames_duplicated) << "seed " << seed;
    total.frames_dropped += rs.frames_dropped;
    total.frames_corrupted += rs.frames_corrupted;
    total.frames_duplicated += rs.frames_duplicated;
    frames_seen += reactor.size();
  }
  // The sweep must actually exercise the faulted scatter-gather path.
  EXPECT_GT(frames_seen, 0u);
  EXPECT_GE(total.frames_corrupted, 1u);
  EXPECT_GE(total.frames_duplicated, 1u);
  EXPECT_GE(total.frames_dropped, 1u);
}

}  // namespace
}  // namespace fairshare::net
