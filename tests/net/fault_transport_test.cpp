// Unit tests for the Transport seam: FaultyTransport's seeded fault
// schedules (reset / drop / duplicate / corrupt) over an in-memory pipe,
// and RetryPolicy's backoff arithmetic (injected inputs, no sleeping).
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "coding/encoder.hpp"
#include "coding/decoder.hpp"
#include "net/fault_transport.hpp"
#include "net/retry.hpp"
#include "net/transport.hpp"
#include "p2p/wire.hpp"
#include "sim/rng.hpp"

namespace fairshare::net {
namespace {

// ------------------------------------------------------- in-memory pipe
// Single-threaded Transport: bytes written by one end are immediately
// readable by the other.  Reading past the buffered bytes reports a clean
// timeout (like a socket with SO_RCVTIMEO and a quiet peer), or EOF after
// close — enough to drive every FaultyTransport path deterministically.
struct PipeState {
  std::deque<std::byte> to_a, to_b;
  bool closed = false;
};

class PipeEnd final : public Transport {
 public:
  PipeEnd(std::shared_ptr<PipeState> state, bool is_a)
      : state_(std::move(state)), is_a_(is_a) {}

  bool write_all(std::span<const std::byte> data) override {
    if (state_->closed) return false;
    auto& out = is_a_ ? state_->to_b : state_->to_a;
    out.insert(out.end(), data.begin(), data.end());
    return true;
  }

  bool read_exact(std::span<std::byte> out) override {
    timed_out_ = false;
    auto& in = is_a_ ? state_->to_a : state_->to_b;
    if (in.size() < out.size()) {
      // Nothing buffered and the pipe lives: a clean timeout.  Anything
      // else (EOF, partial frame) is a hard error, like Socket.
      timed_out_ = !state_->closed && in.empty();
      return false;
    }
    for (auto& b : out) {
      b = in.front();
      in.pop_front();
    }
    return true;
  }

  bool set_recv_timeout(int) override { return true; }
  bool set_send_timeout(int) override { return true; }
  bool timed_out() const override { return timed_out_; }
  void clear_timed_out() override { timed_out_ = false; }
  bool readable(int) override {
    return !(is_a_ ? state_->to_a : state_->to_b).empty();
  }
  void close() override { state_->closed = true; }
  bool valid() const override { return !state_->closed; }

 private:
  std::shared_ptr<PipeState> state_;
  bool is_a_;
  bool timed_out_ = false;
};

struct Pipe {
  std::shared_ptr<PipeState> state = std::make_shared<PipeState>();
  PipeEnd a{state, true};
  std::unique_ptr<Transport> b_owned() {
    return std::make_unique<PipeEnd>(state, false);
  }
};

std::vector<std::byte> frame_of(std::uint8_t tag, std::size_t len = 8) {
  return std::vector<std::byte>(len, std::byte{tag});
}

// ------------------------------------------------------------ transport

TEST(Transport, DefaultFrameImplementationRoundTrips) {
  Pipe pipe;
  auto b = pipe.b_owned();
  const auto frame = frame_of(0x5A, 13);
  ASSERT_TRUE(send_frame(pipe.a, frame));
  const auto got = recv_frame(*b, 64);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, frame);
  // Nothing buffered: clean timeout, retryable.
  EXPECT_FALSE(recv_frame(*b, 64).has_value());
  EXPECT_TRUE(b->timed_out());
}

TEST(FaultyTransport, ResetAfterNFramesKillsBothDirections) {
  Pipe pipe;
  FaultPlan plan;
  plan.reset_after_frames = 3;
  FaultyTransport faulty(pipe.b_owned(), plan);
  for (std::uint8_t i = 0; i < 5; ++i)
    ASSERT_TRUE(send_frame(pipe.a, frame_of(i)));

  for (std::uint8_t i = 0; i < 3; ++i) {
    const auto got = recv_frame(faulty, 64);
    ASSERT_TRUE(got.has_value()) << "frame " << int(i);
    EXPECT_EQ(*got, frame_of(i));
  }
  // Budget spent: the 4th read is the reset, a hard (non-timeout) error,
  // and writes die with it.
  EXPECT_FALSE(recv_frame(faulty, 64).has_value());
  EXPECT_FALSE(faulty.timed_out());
  EXPECT_FALSE(send_frame(faulty, frame_of(9)));
  EXPECT_FALSE(faulty.valid());
  EXPECT_EQ(faulty.stats().connections_reset, 1u);
}

TEST(FaultyTransport, WriteSideCountsFramesTowardsReset) {
  Pipe pipe;
  FaultPlan plan;
  plan.reset_after_frames = 2;
  FaultyTransport faulty(pipe.b_owned(), plan);
  EXPECT_TRUE(send_frame(faulty, frame_of(1)));
  EXPECT_TRUE(send_frame(faulty, frame_of(2)));
  EXPECT_FALSE(send_frame(faulty, frame_of(3)));  // reset fires
  EXPECT_EQ(faulty.stats().connections_reset, 1u);
}

TEST(FaultyTransport, DropSkipsFramesDeterministically) {
  const auto deliver = [](std::uint64_t seed) {
    Pipe pipe;
    FaultPlan plan;
    plan.seed = seed;
    plan.drop_rate = 0.5;
    FaultyTransport faulty(pipe.b_owned(), plan);
    for (std::uint8_t i = 0; i < 20; ++i)
      EXPECT_TRUE(send_frame(pipe.a, frame_of(i)));
    std::vector<std::uint8_t> got;
    for (;;) {
      const auto frame = recv_frame(faulty, 64);
      if (!frame) break;
      got.push_back(std::to_integer<std::uint8_t>((*frame)[0]));
    }
    return std::make_pair(got, faulty.stats().frames_dropped);
  };
  const auto [got1, dropped1] = deliver(42);
  const auto [got2, dropped2] = deliver(42);
  const auto [got3, dropped3] = deliver(1337);
  EXPECT_EQ(got1, got2) << "same seed, same schedule";
  EXPECT_EQ(dropped1, dropped2);
  EXPECT_EQ(got1.size() + dropped1, 20u) << "every frame delivered or counted";
  EXPECT_GT(dropped1, 0u);
  EXPECT_LT(dropped1, 20u);
  EXPECT_NE(got1, got3) << "different seed, different schedule";
}

TEST(FaultyTransport, DuplicateDeliversTheSameFrameTwice) {
  Pipe pipe;
  FaultPlan plan;
  plan.duplicate_rate = 1.0;
  FaultyTransport faulty(pipe.b_owned(), plan);
  ASSERT_TRUE(send_frame(pipe.a, frame_of(7)));
  ASSERT_TRUE(send_frame(pipe.a, frame_of(8)));
  const auto first = recv_frame(faulty, 64);
  const auto again = recv_frame(faulty, 64);
  const auto second = recv_frame(faulty, 64);
  ASSERT_TRUE(first && again && second);
  EXPECT_EQ(*first, frame_of(7));
  EXPECT_EQ(*again, frame_of(7));
  EXPECT_EQ(*second, frame_of(8));
  EXPECT_TRUE(faulty.readable(0)) << "pending duplicate makes it readable";
  EXPECT_EQ(faulty.stats().frames_duplicated, 2u);
}

// Satellite: every flipped-byte frame must be caught by the MD5 message
// digest — rejected as bad_digest, never silently fed to the solver.
TEST(FaultyTransport, CorruptionIsCaughtByMessageDigests) {
  coding::SecretKey secret{};
  secret[0] = 9;
  std::vector<std::byte> data(2048);
  sim::SplitMix64 rng(5);
  for (auto& b : data) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  const coding::CodingParams params{gf::FieldId::gf2_32, 64};  // k = 8
  coding::FileEncoder encoder(secret, 1, data, params);
  const auto messages = encoder.generate(encoder.k());

  Pipe pipe;
  FaultPlan plan;
  plan.corrupt_rate = 1.0;
  FaultyTransport faulty(pipe.b_owned(), plan);
  for (const auto& m : messages)
    ASSERT_TRUE(send_frame(pipe.a, p2p::wire::encode(m)));

  coding::FileDecoder decoder(secret, encoder.info());
  std::size_t parsed = 0;
  for (;;) {
    const auto frame = recv_frame(faulty, 1 << 16);
    if (!frame) break;
    // The flip targets the payload region, so the frame still parses —
    // authentication, not framing, must catch it.
    const auto msg = p2p::wire::decode_coded_message(*frame);
    ASSERT_TRUE(msg.has_value());
    ++parsed;
    EXPECT_EQ(decoder.add(*msg), coding::AddResult::bad_digest);
  }
  EXPECT_EQ(parsed, messages.size());
  EXPECT_EQ(decoder.rank(), 0u) << "no corrupt message reached the solver";
  EXPECT_EQ(decoder.rejected_auth(), messages.size());
  EXPECT_EQ(faulty.stats().frames_corrupted, messages.size());
}

TEST(FaultInjector, StatePersistsAcrossReconnects) {
  // The same injector wraps two successive connections: the RNG stream
  // continues (drops differ between passes) and stats accumulate.
  FaultPlan plan;
  plan.seed = 11;
  plan.drop_rate = 0.5;
  FaultInjector injector(plan);
  std::size_t delivered = 0;
  for (int conn = 0; conn < 2; ++conn) {
    Pipe pipe;
    auto faulty = injector.wrap(pipe.b_owned());
    for (std::uint8_t i = 0; i < 10; ++i)
      ASSERT_TRUE(send_frame(pipe.a, frame_of(i)));
    while (recv_frame(*faulty, 64)) ++delivered;
  }
  EXPECT_EQ(delivered + injector.stats().frames_dropped, 20u);
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(injector.stats().frames_dropped, 0u);
}

TEST(FaultInjector, RefusalIsDeterministicAndCounted) {
  FaultPlan plan;
  plan.refuse_connection = true;
  FaultInjector injector(plan);
  EXPECT_FALSE(injector.admits_connection());
  EXPECT_FALSE(injector.admits_connection());
  EXPECT_EQ(injector.stats().connections_refused, 2u);
  FaultInjector open(FaultPlan{});
  EXPECT_TRUE(open.admits_connection());
  EXPECT_EQ(open.stats().connections_refused, 0u);
}

// ---------------------------------------------------------- RetryPolicy
// Satellite: pure backoff arithmetic — injected attempt indices and
// seeds, no clocks, no sleeping.

TEST(RetryPolicy, ExponentialEnvelopeWithEqualJitter) {
  RetryPolicy policy;
  policy.base_ms = 10;
  policy.max_ms = 10000;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const int envelope = 10 << (attempt - 1);
    for (std::uint64_t seed : {1ull, 2ull, 99ull}) {
      const int d = policy.delay_ms(attempt, seed);
      EXPECT_GE(d, envelope / 2) << "attempt " << attempt;
      EXPECT_LE(d, envelope) << "attempt " << attempt;
    }
  }
}

TEST(RetryPolicy, CapsAtMaxMs) {
  RetryPolicy policy;
  policy.base_ms = 100;
  policy.max_ms = 750;
  for (int attempt = 1; attempt <= 40; ++attempt) {
    const int d = policy.delay_ms(attempt, 7);
    EXPECT_LE(d, 750);
    if (attempt >= 4) {
      EXPECT_GE(d, 750 / 2);  // envelope saturated
    }
  }
}

TEST(RetryPolicy, JitterIsDeterministicInSeedAndAttempt) {
  RetryPolicy policy;
  policy.base_ms = 64;
  policy.max_ms = 1 << 20;
  bool any_seed_difference = false;
  for (int attempt = 1; attempt <= 10; ++attempt) {
    EXPECT_EQ(policy.delay_ms(attempt, 123), policy.delay_ms(attempt, 123));
    if (policy.delay_ms(attempt, 123) != policy.delay_ms(attempt, 456))
      any_seed_difference = true;
  }
  EXPECT_TRUE(any_seed_difference) << "jitter ignores the seed";
}

TEST(RetryPolicy, DegenerateInputsAreSafe) {
  RetryPolicy policy;
  policy.base_ms = 0;
  EXPECT_EQ(policy.delay_ms(3, 1), 0);
  policy.base_ms = 10;
  EXPECT_EQ(policy.delay_ms(0, 1), 0);  // no failed attempt yet
}

}  // namespace
}  // namespace fairshare::net
