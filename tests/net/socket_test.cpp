// TCP framing layer over loopback.
#include <gtest/gtest.h>

#include <thread>

#include "net/socket.hpp"

namespace fairshare::net {
namespace {

TEST(Socket, ConnectToClosedPortFails) {
  // Bind then immediately close to obtain a (very likely) dead port.
  auto probe = Listener::bind_local(0);
  ASSERT_TRUE(probe.has_value());
  const std::uint16_t port = probe->port();
  probe->close();
  EXPECT_FALSE(Socket::connect_to("127.0.0.1", port).has_value());
}

TEST(Socket, FrameRoundTripOverLoopback) {
  auto listener = Listener::bind_local(0);
  ASSERT_TRUE(listener.has_value());

  std::vector<std::byte> payload(100000);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = std::byte{static_cast<std::uint8_t>(i * 31)};

  std::thread server([&] {
    auto conn = listener->accept(2000);
    ASSERT_TRUE(conn.has_value());
    const auto got = recv_frame(*conn, payload.size());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
    // Echo it back twice to exercise multiple frames per connection.
    EXPECT_TRUE(send_frame(*conn, *got));
    EXPECT_TRUE(send_frame(*conn, std::span<const std::byte>{}));  // empty
  });

  auto client = Socket::connect_to("127.0.0.1", listener->port());
  ASSERT_TRUE(client.has_value());
  ASSERT_TRUE(send_frame(*client, payload));
  const auto echo = recv_frame(*client, payload.size());
  ASSERT_TRUE(echo.has_value());
  EXPECT_EQ(*echo, payload);
  const auto empty = recv_frame(*client, payload.size());
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
  server.join();
}

TEST(Socket, ScatterGatherFrameMatchesCopyingFrame) {
  // try_write_frame_ext(head, ext) must put the exact same bytes on the
  // wire as try_write_frame(head ++ ext), including when the payload is
  // large enough that the sendmsg drain spans many partial writes against
  // a full kernel send buffer — the zero-copy serve path's contract.
  auto listener = Listener::bind_local(0);
  ASSERT_TRUE(listener.has_value());
  auto client = Socket::connect_to("127.0.0.1", listener->port());
  ASSERT_TRUE(client.has_value());
  auto conn = listener->accept(2000);
  ASSERT_TRUE(conn.has_value());
  conn->set_nonblocking(true);

  std::vector<std::byte> head(21);
  for (std::size_t i = 0; i < head.size(); ++i)
    head[i] = std::byte{static_cast<std::uint8_t>(0xA0 + i)};
  std::vector<std::byte> ext(1 << 20);
  for (std::size_t i = 0; i < ext.size(); ++i)
    ext[i] = std::byte{static_cast<std::uint8_t>(i * 131 + 7)};
  std::vector<std::byte> whole = head;
  whole.insert(whole.end(), ext.begin(), ext.end());

  std::thread writer([&] {
    const auto drain = [&] {
      while (conn->want_write()) {
        const IoStatus st = conn->try_flush();
        if (st == IoStatus::blocked) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        ASSERT_EQ(st, IoStatus::ok);
      }
    };
    const TryWrite r = conn->try_write_frame_ext(head, ext);
    ASSERT_TRUE(r.accepted);  // nothing staged: accepted even if blocked
    drain();
    const TryWrite r2 = conn->try_write_frame(whole);
    ASSERT_TRUE(r2.accepted);
    drain();
  });

  const auto gathered = recv_frame(*client, whole.size());
  ASSERT_TRUE(gathered.has_value());
  EXPECT_EQ(*gathered, whole);
  const auto copied = recv_frame(*client, whole.size());
  ASSERT_TRUE(copied.has_value());
  EXPECT_EQ(*copied, whole);
  writer.join();
}

TEST(Socket, OversizedFrameRejected) {
  auto listener = Listener::bind_local(0);
  ASSERT_TRUE(listener.has_value());
  std::thread server([&] {
    auto conn = listener->accept(2000);
    ASSERT_TRUE(conn.has_value());
    const std::vector<std::byte> big(1000, std::byte{1});
    (void)send_frame(*conn, big);
  });
  auto client = Socket::connect_to("127.0.0.1", listener->port());
  ASSERT_TRUE(client.has_value());
  EXPECT_FALSE(recv_frame(*client, /*max_len=*/100).has_value());
  server.join();
}

TEST(Socket, RecvOnClosedConnectionFails) {
  auto listener = Listener::bind_local(0);
  ASSERT_TRUE(listener.has_value());
  std::thread server([&] {
    auto conn = listener->accept(2000);
    // close immediately
  });
  auto client = Socket::connect_to("127.0.0.1", listener->port());
  ASSERT_TRUE(client.has_value());
  server.join();
  EXPECT_FALSE(recv_frame(*client, 1024).has_value());
}

TEST(Listener, AcceptTimesOutWithoutClient) {
  auto listener = Listener::bind_local(0);
  ASSERT_TRUE(listener.has_value());
  EXPECT_FALSE(listener->accept(/*timeout_ms=*/20).has_value());
}

}  // namespace
}  // namespace fairshare::net
