// TCP framing layer over loopback.
#include <gtest/gtest.h>

#include <thread>

#include "net/socket.hpp"

namespace fairshare::net {
namespace {

TEST(Socket, ConnectToClosedPortFails) {
  // Bind then immediately close to obtain a (very likely) dead port.
  auto probe = Listener::bind_local(0);
  ASSERT_TRUE(probe.has_value());
  const std::uint16_t port = probe->port();
  probe->close();
  EXPECT_FALSE(Socket::connect_to("127.0.0.1", port).has_value());
}

TEST(Socket, FrameRoundTripOverLoopback) {
  auto listener = Listener::bind_local(0);
  ASSERT_TRUE(listener.has_value());

  std::vector<std::byte> payload(100000);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = std::byte{static_cast<std::uint8_t>(i * 31)};

  std::thread server([&] {
    auto conn = listener->accept(2000);
    ASSERT_TRUE(conn.has_value());
    const auto got = recv_frame(*conn, payload.size());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
    // Echo it back twice to exercise multiple frames per connection.
    EXPECT_TRUE(send_frame(*conn, *got));
    EXPECT_TRUE(send_frame(*conn, std::span<const std::byte>{}));  // empty
  });

  auto client = Socket::connect_to("127.0.0.1", listener->port());
  ASSERT_TRUE(client.has_value());
  ASSERT_TRUE(send_frame(*client, payload));
  const auto echo = recv_frame(*client, payload.size());
  ASSERT_TRUE(echo.has_value());
  EXPECT_EQ(*echo, payload);
  const auto empty = recv_frame(*client, payload.size());
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
  server.join();
}

TEST(Socket, OversizedFrameRejected) {
  auto listener = Listener::bind_local(0);
  ASSERT_TRUE(listener.has_value());
  std::thread server([&] {
    auto conn = listener->accept(2000);
    ASSERT_TRUE(conn.has_value());
    const std::vector<std::byte> big(1000, std::byte{1});
    (void)send_frame(*conn, big);
  });
  auto client = Socket::connect_to("127.0.0.1", listener->port());
  ASSERT_TRUE(client.has_value());
  EXPECT_FALSE(recv_frame(*client, /*max_len=*/100).has_value());
  server.join();
}

TEST(Socket, RecvOnClosedConnectionFails) {
  auto listener = Listener::bind_local(0);
  ASSERT_TRUE(listener.has_value());
  std::thread server([&] {
    auto conn = listener->accept(2000);
    // close immediately
  });
  auto client = Socket::connect_to("127.0.0.1", listener->port());
  ASSERT_TRUE(client.has_value());
  server.join();
  EXPECT_FALSE(recv_frame(*client, 1024).has_value());
}

TEST(Listener, AcceptTimesOutWithoutClient) {
  auto listener = Listener::bind_local(0);
  ASSERT_TRUE(listener.has_value());
  EXPECT_FALSE(listener->accept(/*timeout_ms=*/20).has_value());
}

}  // namespace
}  // namespace fairshare::net
