// Soak: 512 concurrent paced sessions against ONE PeerServer on the epoll
// backend.  The point of the reactor refactor made measurable: the server
// carries hundreds of sessions on O(num_loops) threads, and Equation (2)
// still splits the uplink by contribution ledger at that scale.
//
// Auth is off (each handshake costs an RSA sign/verify; 512 of them would
// dominate the test without exercising anything the auth tests don't),
// so clients connect, send a FileRequest naming their user, and drain.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <thread>
#include <vector>

#include "coding/encoder.hpp"
#include "net/peer_server.hpp"
#include "p2p/wire.hpp"
#include "sim/rng.hpp"

#ifdef __linux__
#include <poll.h>
#include <sys/socket.h>
#endif

namespace fairshare::net {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kFileId = 77;
constexpr std::size_t kSessions = 512;
// Small (256 B) messages: every session's token bucket refills by much
// less than one frame per quantum, and all sessions of a user share one
// deterministic budget schedule.  Small frames keep each session's
// send cycle a few quanta long, so the measurement window spans dozens
// of cycles and the phase-locked quantization averages out.
const coding::CodingParams kParams{gf::FieldId::gf2_32, 64};

p2p::MessageStore make_store(std::size_t count) {
  sim::SplitMix64 rng(21);
  std::vector<std::byte> data(20000);
  for (auto& b : data) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  coding::SecretKey secret{};
  secret[0] = 5;
  coding::FileEncoder encoder(secret, kFileId, data, kParams);
  p2p::MessageStore store;
  for (auto& m : encoder.generate(count)) store.store(std::move(m));
  return store;
}

std::uint64_t bytes_of(const std::vector<PeerServer::AllocationShare>& snap,
                       std::uint64_t user_id) {
  for (const auto& share : snap)
    if (share.user_id == user_id) return share.bytes_sent;
  return 0;
}

std::size_t streaming_of(
    const std::vector<PeerServer::AllocationShare>& snap) {
  std::size_t n = 0;
  for (const auto& share : snap) n += share.active_sessions;
  return n;
}

#ifdef __linux__

TEST(SessionSoak, FiveHundredSessionsPacedByEq2OnLoopThreads) {
  PeerServer::Config config;
  config.require_auth = false;
  config.peer_id = 9;
  config.rate_kbps = 48000.0;
  config.num_loops = 2;
  config.max_sessions = 1024;  // the raised default, spelled out
  // 2048 messages/session: enough that no session can drain its stream
  // inside the ramp + window even on a slow (sanitized) box.
  PeerServer server(config, make_store(2048));
  // User 1 has contributed 3x user 2: Eq. (2) must hold 3:1 at 512-way
  // concurrency just as it does for two sessions.
  server.seed_contribution(1, 3e6);
  server.seed_contribution(2, 1e6);
  ASSERT_TRUE(server.start());
  if (server.backend() != NetBackend::epoll)
    GTEST_SKIP() << "epoll backend unavailable; soak targets the reactor";

  // The headline claim: serving threads scale with loops, not sessions.
  EXPECT_EQ(server.serving_threads(), config.num_loops);

  // 512 sessions, alternating users (256 each).
  std::vector<Socket> clients;
  clients.reserve(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    auto socket = Socket::connect_to("127.0.0.1", server.port());
    ASSERT_TRUE(socket) << "connect " << i;
    p2p::wire::FileRequest request;
    request.user_id = 1 + (i % 2);
    request.file_id = kFileId;
    ASSERT_TRUE(send_frame(*socket, p2p::wire::encode(request)));
    ASSERT_TRUE(socket->set_nonblocking(true));
    clients.push_back(std::move(*socket));
  }

  // One drainer thread empties all 512 sockets so TCP flow control never
  // pushes back on the server — the inverse of the server's own thread
  // economics, and all a client owes a paced stream.
  std::atomic<bool> drain_stop{false};
  std::thread drainer([&] {
    std::vector<pollfd> pfds(kSessions);
    for (std::size_t i = 0; i < kSessions; ++i)
      pfds[i] = {clients[i].native_handle(), POLLIN, 0};
    std::vector<char> sink(64 * 1024);
    while (!drain_stop.load()) {
      if (::poll(pfds.data(), pfds.size(), 50) <= 0) continue;
      for (auto& p : pfds) {
        if (!(p.revents & (POLLIN | POLLHUP | POLLERR))) continue;
        const ssize_t n =
            ::recv(p.fd, sink.data(), sink.size(), MSG_DONTWAIT);
        if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK))
          p.events = 0;  // dead socket; stop polling it
      }
    }
  });

  // Ramp: wait for every session to reach the streaming phase.
  const auto ramp_deadline = Clock::now() + std::chrono::seconds(15);
  while (streaming_of(server.allocation_snapshot()) < kSessions &&
         Clock::now() < ramp_deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(streaming_of(server.allocation_snapshot()), kSessions)
      << "not all sessions reached streaming before the deadline";
  EXPECT_EQ(server.peak_sessions(), kSessions);
  EXPECT_EQ(server.sessions_rejected(), 0u);

  // Measure a steady-state window through the server's own coherent
  // snapshots (bytes are monotone, so two snapshots bracket the window).
  constexpr auto kWindow = std::chrono::milliseconds(1300);
  const auto before = server.allocation_snapshot();
  std::this_thread::sleep_for(kWindow);
  const auto after = server.allocation_snapshot();
  const double delta_1 = static_cast<double>(bytes_of(after, 1)) -
                         static_cast<double>(bytes_of(before, 1));
  const double delta_2 = static_cast<double>(bytes_of(after, 2)) -
                         static_cast<double>(bytes_of(before, 2));
  ASSERT_GT(delta_2, 0.0);

  // Eq. (2): rates proportional to ledgers, 3:1, within the same +-15%
  // the two-session test allows.
  EXPECT_NEAR(delta_1 / delta_2, 3.0, 0.45);

  // The uplink is actually used: at least half the nominal rate made it
  // onto the wire during the window (loose: CI boxes stall).
  const double window_s =
      std::chrono::duration<double>(kWindow).count();
  const double nominal_bytes = config.rate_kbps * 1000.0 / 8.0 * window_s;
  EXPECT_GT(delta_1 + delta_2, nominal_bytes * 0.5);

  // Still O(loops) after carrying 512 streams.
  EXPECT_EQ(server.serving_threads(), config.num_loops);

  drain_stop = true;
  drainer.join();
  server.stop();
  EXPECT_GT(server.messages_sent(), 0u);
}

#else

TEST(SessionSoak, SkippedWithoutEpoll) {
  GTEST_SKIP() << "soak test targets the Linux epoll backend";
}

#endif  // __linux__

}  // namespace
}  // namespace fairshare::net
