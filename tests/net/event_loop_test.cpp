// The reactor's moving parts in isolation: util::TimerWheel expiry
// semantics driven by a hand-held clock, and net::EventLoop's epoll +
// eventfd + wheel composition — cross-thread wakeups, deadline ordering,
// periodic rearming, and fd registrations that outlive their fds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "util/timer_wheel.hpp"

#ifdef __linux__
#include <sys/epoll.h>
#include <unistd.h>
#endif

namespace fairshare {
namespace {

using util::TimerWheel;

constexpr std::uint64_t kMs = 1'000'000;  // ns per ms

std::vector<TimerWheel::Callback> pop(TimerWheel& wheel, std::uint64_t now) {
  std::vector<TimerWheel::Callback> due;
  wheel.advance(now, due);
  return due;
}

TEST(TimerWheelTest, ExpiresInDeadlineOrderAcrossBuckets) {
  TimerWheel wheel;
  std::vector<int> fired;
  // Armed out of order; two share a deadline to pin the arming-order
  // tiebreak.
  wheel.add(5 * kMs, [&] { fired.push_back(5); });
  wheel.add(1 * kMs, [&] { fired.push_back(1); });
  wheel.add(3 * kMs, [&] { fired.push_back(3); });
  wheel.add(3 * kMs, [&] { fired.push_back(4); });
  EXPECT_EQ(wheel.size(), 4u);
  EXPECT_EQ(wheel.next_deadline_ns(), 1 * kMs);

  auto due = pop(wheel, 10 * kMs);
  for (auto& cb : due) cb();
  EXPECT_EQ(fired, (std::vector<int>{1, 3, 4, 5}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, AdvanceStopsAtNotYetDueEntries) {
  TimerWheel wheel;
  int fired = 0;
  wheel.add(2 * kMs, [&] { ++fired; });
  wheel.add(8 * kMs, [&] { ++fired; });

  auto due = pop(wheel, 5 * kMs);
  EXPECT_EQ(due.size(), 1u);
  EXPECT_EQ(wheel.size(), 1u);
  EXPECT_EQ(wheel.next_deadline_ns(), 8 * kMs);

  due = pop(wheel, 8 * kMs);  // boundary: deadline <= now expires
  EXPECT_EQ(due.size(), 1u);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, CancelDisarmsExactlyOnce) {
  TimerWheel wheel;
  bool fired = false;
  const TimerWheel::TimerId id = wheel.add(2 * kMs, [&] { fired = true; });
  wheel.add(2 * kMs, [] {});  // neighbour in the same bucket survives

  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));          // double-cancel
  EXPECT_FALSE(wheel.cancel(TimerWheel::TimerId{0}));  // never valid
  EXPECT_FALSE(wheel.cancel(9999));        // never armed

  auto due = pop(wheel, 10 * kMs);
  EXPECT_EQ(due.size(), 1u);
  EXPECT_FALSE(fired);
}

TEST(TimerWheelTest, DeadlineARotationAheadWaitsItsTurn) {
  // 256 slots x 1 ms tick = one rotation every 256 ms.  A deadline 300 ms
  // out hashes into a bucket the cursor passes long before the deadline;
  // the entry must ride the wheel around instead of firing early.
  TimerWheel wheel;
  bool fired = false;
  wheel.add(300 * kMs, [&] { fired = true; });

  auto due = pop(wheel, 299 * kMs);  // sweeps every bucket at least once
  EXPECT_TRUE(due.empty());
  EXPECT_EQ(wheel.size(), 1u);

  due = pop(wheel, 301 * kMs);
  ASSERT_EQ(due.size(), 1u);
  due[0]();
  EXPECT_TRUE(fired);
}

TEST(TimerWheelTest, ArmingInThePastFiresOnNextAdvance) {
  // The reactor arms retry timers from retry_after() deadlines that may
  // already have elapsed; those must surface on the very next advance,
  // not a rotation later.
  TimerWheel wheel;
  (void)pop(wheel, 500 * kMs);  // cursor well past the deadline below
  bool fired = false;
  wheel.add(100 * kMs, [&] { fired = true; });

  auto due = pop(wheel, 500 * kMs + 1);
  ASSERT_EQ(due.size(), 1u);
  due[0]();
  EXPECT_TRUE(fired);
}

#ifdef __linux__

namespace {
using net::EventLoop;
}  // namespace

TEST(EventLoopTest, EpollIsAvailableOnLinux) {
  EXPECT_TRUE(net::epoll_available());
}

TEST(EventLoopTest, TimersFireInDeadlineOrder) {
  EventLoop loop("test");
  ASSERT_TRUE(loop.valid());
  std::vector<int> order;
  loop.post([&] {
    // Armed shortest-last: ordering must come from deadlines, not arming.
    loop.add_timer_after(30 * kMs, [&] {
      order.push_back(3);
      loop.stop();
    });
    loop.add_timer_after(20 * kMs, [&] { order.push_back(2); });
    loop.add_timer_after(10 * kMs, [&] { order.push_back(1); });
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopTest, PostFromAnotherThreadWakesASleepingLoop) {
  EventLoop loop("test");
  ASSERT_TRUE(loop.valid());
  std::atomic<bool> ran{false};
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    loop.post([&] {
      ran = true;
      loop.stop();
    });
  });
  const auto t0 = std::chrono::steady_clock::now();
  loop.run();  // no fds, no timers: parked in epoll_wait until woken
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  waker.join();
  EXPECT_TRUE(ran.load());
  // The eventfd wakeup must beat any fallback poll interval by a mile.
  EXPECT_LT(elapsed, std::chrono::milliseconds(400));
}

TEST(EventLoopTest, FdReadinessDispatchesToItsCallback) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  EventLoop loop("test");
  ASSERT_TRUE(loop.valid());
  std::string received;
  loop.post([&] {
    ASSERT_TRUE(loop.add_fd(fds[0], EPOLLIN, [&](std::uint32_t events) {
      EXPECT_TRUE(events & EPOLLIN);
      char buf[16];
      const ssize_t n = ::read(fds[0], buf, sizeof buf);
      ASSERT_GT(n, 0);
      received.assign(buf, static_cast<std::size_t>(n));
      loop.stop();
    }));
  });
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_EQ(::write(fds[1], "ping", 4), 4);
  });
  loop.run();
  writer.join();
  EXPECT_EQ(received, "ping");
  EXPECT_EQ(loop.fd_count(), 1u);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoopTest, CloseWhileTimerArmedThenRemoveFdIsSafe) {
  // A session that dies by fault injection closes its fd while its retry
  // timer is still armed; the teardown path then calls remove_fd on the
  // already-closed fd.  Neither step may crash or wedge the loop.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  EventLoop loop("test");
  ASSERT_TRUE(loop.valid());
  int timer_fired = 0;
  loop.post([&] {
    ASSERT_TRUE(loop.add_fd(fds[0], EPOLLIN, [](std::uint32_t) {}));
    loop.add_timer_after(10 * kMs, [&] {
      ++timer_fired;
      ::close(fds[0]);        // fd dies while still registered
      loop.remove_fd(fds[0]);  // EPOLL_CTL_DEL on a closed fd: ignored
      loop.add_timer_after(5 * kMs, [&] {  // loop keeps ticking after
        ++timer_fired;
        loop.stop();
      });
    });
  });
  loop.run();
  ::close(fds[1]);
  EXPECT_EQ(timer_fired, 2);
  EXPECT_EQ(loop.fd_count(), 0u);
}

TEST(EventLoopTest, PeriodicRearmsUntilCancelled) {
  EventLoop loop("test");
  ASSERT_TRUE(loop.valid());
  int count = 0;
  loop.post([&] {
    // The callback cancels its own periodic — the reactor's pacing tick
    // does the same at shutdown.
    auto id = std::make_shared<EventLoop::TimerId>();
    *id = loop.add_periodic(5 * kMs, [&, id] {
      if (++count == 4) {
        EXPECT_TRUE(loop.cancel_timer(*id));
        loop.stop();
      }
    });
  });
  loop.run();
  EXPECT_EQ(count, 4);
}

TEST(EventLoopTest, StopDropsPendingWorkAndRunReturns) {
  EventLoop loop("test");
  ASSERT_TRUE(loop.valid());
  bool late_fired = false;
  loop.post([&] {
    loop.add_timer_after(3600ull * 1000 * kMs, [&] { late_fired = true; });
    loop.stop();
  });
  loop.run();  // must return promptly despite the hour-out timer
  EXPECT_FALSE(late_fired);
  EXPECT_FALSE(loop.running());
}

#endif  // __linux__

}  // namespace
}  // namespace fairshare
