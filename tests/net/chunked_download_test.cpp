// End-to-end chunked downloads: a chunked FileInfo selects the
// overlapping-class decoder inside download_file, and the file arrives
// intact over both serving backends (the epoll reactor's zero-copy
// scatter-gather path and the blocking threads path), from a verbatim
// store and from an encode-on-demand MessageStore source.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "coding/chunked.hpp"
#include "net/download_client.hpp"
#include "net/peer_server.hpp"
#include "obs/metrics.hpp"
#include "p2p/store.hpp"
#include "sim/rng.hpp"

namespace fairshare::net {
namespace {

constexpr std::uint64_t kFileId = 42;

std::vector<std::byte> blob(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

coding::ChunkedSchedule small_classes() {
  coding::ChunkedSchedule s;
  s.class_size = 16;
  s.overlap = 4;
  s.seed = 11;
  return s;
}

struct Fixture {
  coding::SecretKey secret{};
  std::vector<std::byte> data;
  coding::CodingParams params{gf::FieldId::gf2_32, 256};  // 1 KiB chunks
  std::unique_ptr<coding::chunked::Encoder> encoder;

  Fixture() {
    secret[0] = 33;
    data = blob(100000, 0xBEEF);  // k = 98, several classes
    encoder = std::make_unique<coding::chunked::Encoder>(
        secret, kFileId, data, params, small_classes());
  }
};

DownloadReport download_from(PeerServer& server,
                             const coding::SecretKey& secret,
                             const coding::FileInfo& info,
                             obs::MetricsRegistry* registry) {
  PeerEndpoint ep;
  ep.port = server.port();
  DownloadOptions options;
  options.user_id = 9;
  options.registry = registry;
  return download_file({ep}, secret, info, options);
}

TEST(ChunkedDownload, VerbatimStoreOnBothBackends) {
  Fixture fx;
  ASSERT_EQ(fx.encoder->info().codec, coding::CodecKind::chunked);
  const auto pool = fx.encoder->generate(fx.encoder->k());
  const coding::FileInfo info = fx.encoder->info();
  const std::size_t classes = fx.encoder->class_map().classes();
  ASSERT_GT(classes, 2u);

  for (const NetBackend backend : {NetBackend::epoll, NetBackend::threads}) {
    SCOPED_TRACE(backend == NetBackend::epoll ? "epoll" : "threads");
    p2p::MessageStore store;
    for (const auto& m : pool) store.store(coding::EncodedMessage(m));
    PeerServer::Config config;
    config.require_auth = false;
    config.backend = backend;
    PeerServer server(config, std::move(store));
    ASSERT_TRUE(server.start());
    ASSERT_EQ(server.backend(), backend);

    obs::MetricsRegistry registry;
    const DownloadReport report =
        download_from(server, fx.secret, info, &registry);
    server.stop();

    ASSERT_TRUE(report.success);
    EXPECT_EQ(report.data, fx.data);
    // The quota-scheduled in-order stream decodes with zero overhead.
    EXPECT_EQ(report.messages_accepted, fx.encoder->k());

    // The chunked decoder reported through the per-download registry: the
    // cascade completed every class, and the rank series carries the
    // codec="chunked" label.
    EXPECT_EQ(
        registry.counter_total("fairshare_chunked_classes_complete_total"),
        classes);
    bool saw_chunked_rank = false;
    for (const auto& g : registry.snapshot().gauges) {
      if (g.name != "fairshare_decoder_rank") continue;
      for (const auto& [key, value] : g.labels)
        if (key == "codec") saw_chunked_rank = value == "chunked";
      EXPECT_GE(g.value, static_cast<double>(fx.encoder->k()));
    }
    EXPECT_TRUE(saw_chunked_rank);
  }
}

TEST(ChunkedDownload, EncodeOnDemandSourceServesChunkedSymbols) {
  // The owner-side serving path: no verbatim store, the MessageStore pulls
  // coded symbols straight out of the encoder as sessions consume them,
  // and the zero-copy frame path serves the cached references.
  Fixture fx;
  const std::size_t budget = 2 * fx.encoder->k();
  // The owner publishes digests for everything it may serve: prime the
  // metadata by walking one encoder through the whole budget, then let
  // each server regenerate the identical (deterministic) stream.
  (void)fx.encoder->generate(budget);
  const coding::FileInfo info = fx.encoder->info();

  for (const NetBackend backend : {NetBackend::epoll, NetBackend::threads}) {
    SCOPED_TRACE(backend == NetBackend::epoll ? "epoll" : "threads");
    auto source = std::make_shared<coding::chunked::Encoder>(
        fx.secret, kFileId, fx.data, fx.params, small_classes());
    p2p::MessageStore store;
    store.attach_source(kFileId, budget,
                        [source] { return source->next_message(); });
    coding::EncodedMessage verbatim;
    verbatim.file_id = kFileId;
    EXPECT_FALSE(store.store(std::move(verbatim)))
        << "verbatim writes must not mix into a sourced file";
    PeerServer::Config config;
    config.require_auth = false;
    config.backend = backend;
    PeerServer server(config, std::move(store));
    ASSERT_TRUE(server.start());

    const DownloadReport report =
        download_from(server, fx.secret, info, nullptr);
    server.stop();

    ASSERT_TRUE(report.success);
    EXPECT_EQ(report.data, fx.data);
    EXPECT_GE(report.messages_accepted, fx.encoder->k());
  }
}

}  // namespace
}  // namespace fairshare::net
