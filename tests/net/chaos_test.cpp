// Chaos suite: the retry/failover download path under seeded fault
// injection over real sockets (ISSUE acceptance scenarios).
//
// Everything here is driven by FaultPlan seeds — `ctest -L chaos` selects
// this suite alone, and the FAIRSHARE_CHAOS_ITERS compile definition (a
// CMake cache variable) scales how many seeds each scenario sweeps, so a
// soak run is `-DFAIRSHARE_CHAOS_ITERS=50` away.  No test synchronizes by
// sleeping: completion is observed through download_file's own blocking
// call, and assertions tolerate scheduling variance but not semantic
// variance (success/failure and the counter partition must hold for every
// seed).
//
// The servers run whatever backend is the build/env default — the epoll
// reactor where available — so the chaos seeds also exercise the
// non-blocking FaultyTransport discipline, where injected delays become
// timer-wheel releases instead of sleeps; FAIRSHARE_NET_BACKEND=threads
// re-runs the identical seeds against the blocking path.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "coding/chunked.hpp"
#include "coding/encoder.hpp"
#include "net/download_client.hpp"
#include "net/fault_transport.hpp"
#include "net/peer_server.hpp"
#include "net/socket.hpp"
#include "p2p/store.hpp"
#include "sim/rng.hpp"

#ifndef FAIRSHARE_CHAOS_ITERS
#define FAIRSHARE_CHAOS_ITERS 3
#endif

namespace fairshare::net {
namespace {

constexpr int kIters = FAIRSHARE_CHAOS_ITERS;

std::vector<std::byte> blob(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

// A swarm where every peer holds its own full batch of k messages
// (swarm_test idiom, auth off) and faults are injected client-side via a
// per-peer FaultInjector handed to DownloadOptions::transport_factory.
struct ChaosSwarm {
  std::vector<std::unique_ptr<PeerServer>> servers;
  std::vector<PeerEndpoint> endpoints;
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  coding::FileInfo info;
  std::vector<std::byte> data;
  coding::SecretKey secret{};

  ChaosSwarm(std::size_t n_peers, std::size_t bytes,
             const std::vector<FaultPlan>& plans) {
    secret[0] = 77;
    data = blob(bytes, 1234);
    const coding::CodingParams params{gf::FieldId::gf2_32, 256};  // 1 KiB
    coding::FileEncoder encoder(secret, 42, data, params);
    for (std::size_t p = 0; p < n_peers; ++p) {
      p2p::MessageStore store;
      for (auto& m : encoder.generate(encoder.k())) store.store(std::move(m));
      PeerServer::Config config;
      config.peer_id = p;
      config.require_auth = false;
      config.rng_seed = 100 + p;
      // A dropped request frame must not stall a session for seconds.
      config.handshake_timeout_ms = 300;
      auto server = std::make_unique<PeerServer>(config, std::move(store));
      EXPECT_TRUE(server->start());
      PeerEndpoint ep;
      ep.port = server->port();
      ep.peer_id = p;
      endpoints.push_back(ep);
      servers.push_back(std::move(server));
      injectors.push_back(std::make_unique<FaultInjector>(plans[p]));
    }
    info = encoder.info();
  }

  ~ChaosSwarm() {
    for (auto& s : servers) s->stop();
  }

  /// Connection factory routing every dial through the peer's injector.
  std::function<std::unique_ptr<Transport>(const PeerEndpoint&)> factory() {
    return [this](const PeerEndpoint& ep) -> std::unique_ptr<Transport> {
      FaultInjector& injector = *injectors[ep.peer_id];
      if (!injector.admits_connection()) return nullptr;  // ECONNREFUSED
      auto socket = Socket::connect_to(ep.host, ep.port);
      if (!socket) return nullptr;
      return injector.wrap(std::make_unique<Socket>(std::move(*socket)));
    };
  }
};

/// The documented failure-event partition (download_client.hpp): per peer
/// at most one terminal failure, retries bounded by attempts, and the
/// report totals are exactly the per-peer sums.
void assert_counter_partition(const DownloadReport& report,
                              std::size_t n_peers) {
  ASSERT_EQ(report.per_peer.size(), n_peers);
  std::size_t retried = 0, failed = 0;
  for (const PeerDownloadStats& ps : report.per_peer) {
    EXPECT_LE(ps.sessions_retried + (ps.gave_up ? 1u : 0u), ps.attempts)
        << "peer " << ps.peer_id << ": more failure events than attempts";
    if (ps.attempts > 0) {
      EXPECT_LE(ps.sessions_retried, ps.attempts - 1)
          << "peer " << ps.peer_id << ": the final attempt cannot be retried";
    }
    retried += ps.sessions_retried;
    failed += ps.gave_up ? 1u : 0u;
  }
  EXPECT_EQ(report.sessions_retried, retried);
  EXPECT_EQ(report.sessions_failed, failed);
  EXPECT_LE(report.sessions_failed, n_peers);
  EXPECT_LE(report.frames_corrupt, report.messages_rejected);
}

// ------------------------------------------------------------- acceptance
// ISSUE scenario: 4 peers — one refuses outright, one resets mid-stream,
// one corrupts 10% of frames, one is healthy — and the download still
// produces the exact file for every fault seed, because the union of
// surviving peers holds >= k innovative messages.

TEST(NetChaos, SwarmSurvivesRefusalResetAndCorruption) {
  std::size_t corrupt_frames_total = 0;
  for (int iter = 0; iter < kIters; ++iter) {
    const std::uint64_t seed = 0xC0DE + 1000u * static_cast<unsigned>(iter);
    std::vector<FaultPlan> plans(4);
    plans[0].refuse_connection = true;
    plans[1].seed = seed + 1;
    // The request spends the whole budget, so the session's very next
    // transport touch — the first streamed message, a timed-out read, or
    // the shutdown stop frame — trips the RST.  A larger budget would
    // make the "reset demonstrably fired" assertion below a scheduling
    // race: on a loaded single-core box the other three peers can finish
    // the decode before this peer's reader consumes its Nth frame.
    plans[1].reset_after_frames = 1;
    plans[2].seed = seed + 2;
    plans[2].corrupt_rate = 0.10;
    // plans[3]: healthy.
    ChaosSwarm swarm(4, 100000, plans);

    DownloadOptions options;
    options.user_id = 9;
    options.rng_seed = seed;
    options.transport_factory = swarm.factory();
    const DownloadReport report =
        download_file(swarm.endpoints, swarm.secret, swarm.info, options);

    ASSERT_TRUE(report.success) << "seed " << seed;
    EXPECT_EQ(report.data, swarm.data) << "seed " << seed;
    assert_counter_partition(report, 4);
    // Each injected fault demonstrably fired.
    EXPECT_GE(swarm.injectors[0]->stats().connections_refused, 1u);
    EXPECT_GE(swarm.injectors[1]->stats().connections_reset, 1u);
    corrupt_frames_total += swarm.injectors[2]->stats().frames_corrupted;
    // The refusing peer never produces a message.
    EXPECT_EQ(report.per_peer[0].messages_accepted, 0u);
  }
  // ~10% of the dozens of frames the corrupting peer streams per seed.
  EXPECT_GE(corrupt_frames_total, 1u);
}

TEST(NetChaos, FailsCleanlyAndPromptlyWhenSurvivorsHoldLessThanK) {
  // Survivors jointly hold k-2 < k messages: the download must fail, say
  // so, keep its books straight, and return promptly (bounded backoff).
  std::vector<FaultPlan> plans(2);
  plans[0].refuse_connection = true;
  ChaosSwarm swarm(2, 50000, plans);
  // Rebuild peer 1's server with a store that is 2 messages short.
  swarm.servers[1]->stop();
  coding::FileEncoder encoder(swarm.secret, 42, swarm.data,
                              coding::CodingParams{gf::FieldId::gf2_32, 256});
  const std::size_t k = encoder.k();
  ASSERT_GT(k, 2u);
  p2p::MessageStore store;
  for (auto& m : encoder.generate(k - 2)) store.store(std::move(m));
  PeerServer::Config config;
  config.require_auth = false;
  PeerServer short_peer(config, std::move(store));
  ASSERT_TRUE(short_peer.start());
  swarm.endpoints[1].port = short_peer.port();

  DownloadOptions options;
  options.user_id = 9;
  options.retry = RetryPolicy{/*max_attempts=*/3, /*base_ms=*/2,
                              /*max_ms=*/20};
  options.transport_factory = swarm.factory();
  const DownloadReport report =
      download_file(swarm.endpoints, swarm.secret, swarm.info, options);

  EXPECT_FALSE(report.success);
  EXPECT_TRUE(report.data.empty());
  EXPECT_LT(report.seconds, 5.0) << "failure must be prompt, not a hang";
  assert_counter_partition(report, 2);
  // Fully deterministic here (the decode can never complete): both peers
  // exhaust the policy, and every failed attempt is partitioned.
  EXPECT_EQ(report.per_peer[0].attempts, 3u);
  EXPECT_EQ(report.per_peer[1].attempts, 3u);
  EXPECT_EQ(report.sessions_retried, 4u);  // 2 per peer
  EXPECT_EQ(report.sessions_failed, 2u);
  // The short peer's store was drained exactly once; replays on later
  // attempts fell out as non-innovative.
  EXPECT_EQ(report.per_peer[1].messages_accepted, k - 2);
  short_peer.stop();
}

// ---------------------------------------------------- chunked resume
// Satellite (chunked codec PR): a mid-stream reset during a chunked
// download is retried and the decode *resumes* — per-class solver state
// survives across sessions, replayed messages fall out as non-innovative,
// and the cascade still completes every class for every fault seed.

TEST(NetChaos, ChunkedDownloadResumesAcrossMidStreamResets) {
  coding::SecretKey secret{};
  secret[0] = 88;
  const auto data = blob(100000, 4321);
  const coding::CodingParams params{gf::FieldId::gf2_32, 256};  // 1 KiB
  coding::ChunkedSchedule schedule;
  schedule.class_size = 16;
  schedule.overlap = 4;
  schedule.seed = 5;
  coding::chunked::Encoder encoder(secret, 42, data, params, schedule);
  const std::size_t k = encoder.k();
  const auto pool = encoder.generate(k);
  ASSERT_GT(encoder.class_map().classes(), 2u);

  for (int iter = 0; iter < kIters; ++iter) {
    const std::uint64_t seed = 0xC4UL + 1000u * static_cast<unsigned>(iter);
    std::vector<FaultPlan> plans(3);
    // Peer 0 dies mid-stream on every attempt (the request frame plus an
    // eighth of the coded messages fit the budget); peer 1 corrupts; peer
    // 2 delivers everything intact, so the swarm jointly always covers
    // the file.  Peers 1 and 2 are also slowed by a 1 ms per-frame delay:
    // their client threads sleep between frames, so even on a loaded
    // one-core box peer 0's undelayed stream reaches its reset budget
    // before the others can cover the file — the reset assertion below
    // must hold for every scheduling interleaving, not just fair ones.
    plans[0].seed = seed;
    plans[0].reset_after_frames = 1 + k / 8;
    plans[1].seed = seed + 1;
    plans[1].corrupt_rate = 0.10;
    plans[1].delay_rate = 1.0;
    plans[1].delay_ms = 1;
    plans[2].seed = seed + 2;
    plans[2].delay_rate = 1.0;
    plans[2].delay_ms = 1;

    std::vector<std::unique_ptr<PeerServer>> servers;
    std::vector<PeerEndpoint> endpoints;
    std::vector<std::unique_ptr<FaultInjector>> injectors;
    for (std::size_t p = 0; p < plans.size(); ++p) {
      p2p::MessageStore store;
      for (const auto& m : pool) store.store(coding::EncodedMessage(m));
      PeerServer::Config config;
      config.peer_id = p;
      config.require_auth = false;
      config.rng_seed = 200 + p;
      config.handshake_timeout_ms = 300;
      auto server = std::make_unique<PeerServer>(config, std::move(store));
      ASSERT_TRUE(server->start());
      PeerEndpoint ep;
      ep.port = server->port();
      ep.peer_id = p;
      endpoints.push_back(ep);
      servers.push_back(std::move(server));
      injectors.push_back(std::make_unique<FaultInjector>(plans[p]));
    }

    DownloadOptions options;
    options.user_id = 9;
    options.rng_seed = seed;
    options.retry = RetryPolicy{/*max_attempts=*/4, /*base_ms=*/2,
                                /*max_ms=*/20};
    options.transport_factory =
        [&](const PeerEndpoint& ep) -> std::unique_ptr<Transport> {
      FaultInjector& injector = *injectors[ep.peer_id];
      if (!injector.admits_connection()) return nullptr;
      auto socket = Socket::connect_to(ep.host, ep.port);
      if (!socket) return nullptr;
      return injector.wrap(std::make_unique<Socket>(std::move(*socket)));
    };
    const DownloadReport report =
        download_file(endpoints, secret, encoder.info(), options);

    ASSERT_TRUE(report.success) << "seed " << seed;
    EXPECT_EQ(report.data, data) << "seed " << seed;
    assert_counter_partition(report, plans.size());
    // The reset demonstrably interrupted a chunked stream mid-flight...
    EXPECT_GE(injectors[0]->stats().connections_reset, 1u);
    // ...yet no message was double-counted: the pool holds k distinct
    // messages, and replays across retried sessions fall out as
    // non-innovative (donation races can complete a class early, so the
    // exact count depends on interleaving — the bound does not).
    EXPECT_LE(report.messages_accepted, k);
    EXPECT_GE(report.messages_accepted, k / 2);
    for (auto& s : servers) s->stop();
  }
}

// ------------------------------------------------- counter partition
// Satellite: a peer that completes the handshake and then resets must be
// counted once per failed attempt — in sessions_retried when another
// attempt follows, in sessions_failed only for its terminal attempt —
// never in both.  Exercises the server-side accept-path wrapper hook.

TEST(NetChaos, HandshakeThenResetIsCountedOnce) {
  coding::SecretKey secret{};
  secret[0] = 5;
  const auto data = blob(20000, 77);
  coding::FileEncoder encoder(secret, 42, data,
                              coding::CodingParams{gf::FieldId::gf2_32, 256});
  p2p::MessageStore store;
  for (auto& m : encoder.generate(encoder.k())) store.store(std::move(m));

  // Server-side injector: the request frame is read (handshake done), then
  // the first outgoing coded message trips the reset.
  FaultPlan plan;
  plan.reset_after_frames = 1;
  auto injector = std::make_shared<FaultInjector>(plan);
  PeerServer::Config config;
  config.require_auth = false;
  config.transport_wrapper = [injector](std::unique_ptr<Transport> inner) {
    return injector->wrap(std::move(inner));
  };
  PeerServer server(config, std::move(store));
  ASSERT_TRUE(server.start());

  PeerEndpoint ep;
  ep.port = server.port();
  DownloadOptions options;
  options.retry = RetryPolicy{/*max_attempts=*/2, /*base_ms=*/2,
                              /*max_ms=*/20};
  const DownloadReport report =
      download_file({ep}, secret, encoder.info(), options);

  EXPECT_FALSE(report.success);
  assert_counter_partition(report, 1);
  EXPECT_EQ(report.per_peer[0].attempts, 2u);
  EXPECT_EQ(report.per_peer[0].sessions_retried, 1u);
  EXPECT_TRUE(report.per_peer[0].gave_up);
  EXPECT_EQ(report.sessions_retried, 1u);
  EXPECT_EQ(report.sessions_failed, 1u);
  EXPECT_EQ(report.per_peer[0].messages_accepted, 0u);
  EXPECT_GE(injector->stats().connections_reset, 2u);  // once per attempt
  server.stop();
}

TEST(NetChaos, RefusingPeerExhaustsPolicyDeterministically) {
  coding::SecretKey secret{};
  secret[0] = 5;
  const auto data = blob(4096, 78);
  coding::FileEncoder encoder(secret, 42, data,
                              coding::CodingParams{gf::FieldId::gf2_32, 256});

  std::vector<FaultPlan> plans(1);
  plans[0].refuse_connection = true;
  FaultInjector injector(plans[0]);
  PeerEndpoint ep;
  ep.port = 1;  // never dialed: the injector refuses first
  DownloadOptions options;
  options.retry = RetryPolicy{/*max_attempts=*/3, /*base_ms=*/2,
                              /*max_ms=*/20};
  options.transport_factory =
      [&](const PeerEndpoint&) -> std::unique_ptr<Transport> {
    if (!injector.admits_connection()) return nullptr;
    ADD_FAILURE() << "refusing injector admitted a connection";
    return nullptr;
  };
  const DownloadReport report =
      download_file({ep}, secret, encoder.info(), options);

  EXPECT_FALSE(report.success);
  assert_counter_partition(report, 1);
  EXPECT_EQ(report.per_peer[0].attempts, 3u);
  EXPECT_EQ(report.sessions_retried, 2u);
  EXPECT_EQ(report.sessions_failed, 1u);
  EXPECT_EQ(injector.stats().connections_refused, 3u);
}

// ---------------------------------------------------------- corruption
// Satellite: every flipped-byte frame is rejected by the per-message MD5
// digest, bumps messages_rejected and frames_corrupt, and never reaches
// the solver — end to end over a real socket.

TEST(NetChaos, FullyCorruptStreamIsRejectedByDigests) {
  coding::SecretKey secret{};
  secret[0] = 5;
  const auto data = blob(20000, 79);
  coding::FileEncoder encoder(secret, 42, data,
                              coding::CodingParams{gf::FieldId::gf2_32, 256});
  const std::size_t k = encoder.k();
  p2p::MessageStore store;
  for (auto& m : encoder.generate(k)) store.store(std::move(m));
  PeerServer::Config config;
  config.require_auth = false;
  PeerServer server(config, std::move(store));
  ASSERT_TRUE(server.start());

  FaultPlan plan;
  plan.seed = 99;
  plan.corrupt_rate = 1.0;
  FaultInjector injector(plan);
  PeerEndpoint ep;
  ep.port = server.port();
  DownloadOptions options;
  options.retry.max_attempts = 1;  // one pass over the store is enough
  options.transport_factory =
      [&](const PeerEndpoint& peer) -> std::unique_ptr<Transport> {
    auto socket = Socket::connect_to(peer.host, peer.port);
    if (!socket) return nullptr;
    return injector.wrap(std::make_unique<Socket>(std::move(*socket)));
  };
  const DownloadReport report =
      download_file({ep}, secret, encoder.info(), options);

  EXPECT_FALSE(report.success);
  assert_counter_partition(report, 1);
  // Every streamed frame was flipped, parsed, and thrown out by MD5.  (The
  // request the client wrote is flipped too — its rate field — which the
  // server sanitizes; the stream itself still flows.)
  EXPECT_EQ(report.per_peer[0].messages_accepted, 0u);
  EXPECT_EQ(report.frames_corrupt, k);
  EXPECT_EQ(report.messages_rejected, k);
  EXPECT_GE(injector.stats().frames_corrupted, k);  // request flip included
  server.stop();
}

// ------------------------------------------------------------- property
// Satellite: decode success is a function of *coverage*, not of the fault
// seed.  One screened pool of exactly k jointly-independent messages is
// sliced across peers; random peers refuse; the rest serve their slices
// through drop/corrupt/duplicate/delay noise.  For every seed: the
// download succeeds iff the surviving slices jointly cover all k messages.

TEST(NetChaos, SuccessDependsOnCoverageNotOnFaultSeed) {
  constexpr std::size_t kPeers = 3;
  const coding::CodingParams params{gf::FieldId::gf2_32, 64};  // 256 B msgs
  coding::SecretKey secret{};
  secret[0] = 13;
  const auto data = blob(1536, 80);  // k = 6

  const int scenarios = 16 * kIters;
  int successes = 0;
  for (int i = 0; i < scenarios; ++i) {
    const std::uint64_t seed = 0x5EED0000u + static_cast<unsigned>(i);
    sim::SplitMix64 rng(seed);
    coding::FileEncoder encoder(secret, 42, data, params);
    const std::size_t k = encoder.k();
    ASSERT_EQ(k, 6u);
    const auto pool = encoder.generate(k);

    // Contiguous slice (with wraparound) per peer; random refusals.
    std::vector<bool> covered(k, false);
    std::vector<std::size_t> begin(kPeers), len(kPeers);
    std::vector<bool> refuses(kPeers);
    for (std::size_t p = 0; p < kPeers; ++p) {
      begin[p] = rng.next_below(k);
      len[p] = rng.next_below(k + 1);
      refuses[p] = rng.next_double() < 0.35;
      if (!refuses[p])
        for (std::size_t j = 0; j < len[p]; ++j)
          covered[(begin[p] + j) % k] = true;
    }
    bool expect_success = true;
    for (bool c : covered) expect_success = expect_success && c;

    std::vector<std::unique_ptr<PeerServer>> servers;
    std::vector<PeerEndpoint> endpoints;
    std::vector<std::unique_ptr<FaultInjector>> injectors;
    for (std::size_t p = 0; p < kPeers; ++p) {
      p2p::MessageStore store;
      for (std::size_t j = 0; j < len[p]; ++j)
        store.store(coding::EncodedMessage(pool[(begin[p] + j) % k]));
      PeerServer::Config config;
      config.peer_id = p;
      config.require_auth = false;
      config.handshake_timeout_ms = 150;  // a dropped request stalls briefly
      auto server = std::make_unique<PeerServer>(config, std::move(store));
      ASSERT_TRUE(server->start());
      PeerEndpoint ep;
      ep.port = server->port();
      ep.peer_id = p;
      endpoints.push_back(ep);
      servers.push_back(std::move(server));

      FaultPlan plan;
      plan.seed = seed ^ (0xABCDull * (p + 1));
      plan.refuse_connection = refuses[p];
      plan.drop_rate = 0.08;
      plan.corrupt_rate = 0.06;
      plan.duplicate_rate = 0.12;
      plan.delay_rate = 0.08;
      plan.delay_ms = 1;
      injectors.push_back(std::make_unique<FaultInjector>(plan));
    }

    DownloadOptions options;
    options.rng_seed = seed;
    // Benign per-frame faults vanish under 10 re-streams of a slice: the
    // per-attempt chance of losing any given message is ~0.2, so the odds
    // a surviving peer never lands one are ~1e-7 per message.
    options.retry = RetryPolicy{/*max_attempts=*/10, /*base_ms=*/2,
                                /*max_ms=*/10};
    options.transport_factory =
        [&](const PeerEndpoint& ep) -> std::unique_ptr<Transport> {
      FaultInjector& injector = *injectors[ep.peer_id];
      if (!injector.admits_connection()) return nullptr;
      auto socket = Socket::connect_to(ep.host, ep.port);
      if (!socket) return nullptr;
      return injector.wrap(std::make_unique<Socket>(std::move(*socket)));
    };
    const DownloadReport report =
        download_file(endpoints, secret, encoder.info(), options);

    EXPECT_EQ(report.success, expect_success)
        << "seed " << seed << ": survivors "
        << (expect_success ? "cover" : "do not cover") << " all " << k
        << " messages";
    if (report.success) {
      EXPECT_EQ(report.data, data) << "seed " << seed;
      ++successes;
    }
    assert_counter_partition(report, kPeers);
    for (auto& s : servers) s->stop();
  }
  // The scenario distribution must actually exercise both outcomes.
  EXPECT_GT(successes, 0);
  EXPECT_LT(successes, scenarios);
}

}  // namespace
}  // namespace fairshare::net
