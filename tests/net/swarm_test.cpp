// End-to-end over real sockets: peer servers + parallel download client.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coding/encoder.hpp"
#include "crypto/chacha20.hpp"
#include "net/download_client.hpp"
#include "net/peer_server.hpp"
#include "sim/rng.hpp"

namespace fairshare::net {
namespace {

std::vector<std::byte> blob(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

const coding::CodingParams kParams{gf::FieldId::gf2_32, 256};  // 1 KiB msgs

struct Swarm {
  std::vector<std::unique_ptr<PeerServer>> servers;
  std::vector<PeerEndpoint> endpoints;
  coding::FileInfo info;
  std::vector<std::byte> data;
  coding::SecretKey secret{};

  // Disseminate k messages per peer, optionally with auth identities.
  Swarm(std::size_t n_peers, std::size_t bytes, bool auth,
        std::uint64_t user_id, const crypto::RsaPublicKey* user_key,
        const std::vector<crypto::RsaKeyPair>* peer_keys = nullptr) {
    secret[0] = 77;
    data = blob(bytes, 1234);
    coding::FileEncoder encoder(secret, 42, data, kParams);
    for (std::size_t p = 0; p < n_peers; ++p) {
      p2p::MessageStore store;
      for (auto& m : encoder.generate(encoder.k())) store.store(std::move(m));
      PeerServer::Config config;
      config.peer_id = p;
      config.require_auth = auth;
      config.rng_seed = 100 + p;
      std::optional<crypto::RsaKeyPair> identity;
      if (auth && peer_keys) identity = (*peer_keys)[p];
      auto server = std::make_unique<PeerServer>(config, std::move(store),
                                                 std::move(identity));
      if (auth && user_key) server->register_user(user_id, *user_key);
      EXPECT_TRUE(server->start());
      PeerEndpoint ep;
      ep.port = server->port();
      ep.peer_id = p;
      if (auth && peer_keys) ep.identity = (*peer_keys)[p].pub;
      endpoints.push_back(ep);
      servers.push_back(std::move(server));
    }
    info = encoder.info();
  }
};

crypto::ChaCha20 rng_for(std::uint8_t tag) {
  std::array<std::uint8_t, 32> key{};
  key[0] = tag;
  std::array<std::uint8_t, 12> nonce{};
  return crypto::ChaCha20(key, nonce, 0);
}

TEST(NetSwarm, ParallelDownloadOverRealSockets) {
  Swarm swarm(4, 100000, /*auth=*/false, 0, nullptr);
  DownloadOptions options;
  options.user_id = 9;
  const DownloadReport report =
      download_file(swarm.endpoints, swarm.secret, swarm.info, options);
  ASSERT_TRUE(report.success) << "failed sessions: " << report.sessions_failed;
  EXPECT_EQ(report.data, swarm.data);
  EXPECT_EQ(report.sessions_failed, 0u);
  for (auto& s : swarm.servers) s->stop();
}

TEST(NetSwarm, AuthenticatedSwarmDownload) {
  crypto::ChaCha20 krng = rng_for(1);
  const crypto::RsaKeyPair user_key = crypto::RsaKeyPair::generate(512, krng);
  std::vector<crypto::RsaKeyPair> peer_keys;
  for (int i = 0; i < 3; ++i)
    peer_keys.push_back(crypto::RsaKeyPair::generate(512, krng));

  Swarm swarm(3, 50000, /*auth=*/true, /*user_id=*/7, &user_key.pub,
              &peer_keys);
  DownloadOptions options;
  options.user_id = 7;
  options.user_key = &user_key;
  const DownloadReport report =
      download_file(swarm.endpoints, swarm.secret, swarm.info, options);
  ASSERT_TRUE(report.success) << "failed sessions: " << report.sessions_failed;
  EXPECT_EQ(report.data, swarm.data);
  std::size_t auth_rejections = 0;
  for (auto& s : swarm.servers) {
    auth_rejections += s->auth_rejections();
    s->stop();
  }
  EXPECT_EQ(auth_rejections, 0u);
}

TEST(NetSwarm, UnknownUserRejectedByServers) {
  crypto::ChaCha20 krng = rng_for(2);
  const crypto::RsaKeyPair user_key = crypto::RsaKeyPair::generate(512, krng);
  const crypto::RsaKeyPair stranger = crypto::RsaKeyPair::generate(512, krng);
  std::vector<crypto::RsaKeyPair> peer_keys;
  peer_keys.push_back(crypto::RsaKeyPair::generate(512, krng));

  // Server only knows user 7; a stranger (user 8) must be turned away.
  Swarm swarm(1, 20000, /*auth=*/true, /*user_id=*/7, &user_key.pub,
              &peer_keys);
  DownloadOptions options;
  options.user_id = 8;
  options.user_key = &stranger;
  // A server-side rejection looks like a dropped link to the client, so it
  // would be retried; one attempt keeps the rejection count exact.
  options.retry.max_attempts = 1;
  const DownloadReport report =
      download_file(swarm.endpoints, swarm.secret, swarm.info, options);
  EXPECT_FALSE(report.success);
  EXPECT_EQ(swarm.servers[0]->auth_rejections(), 1u);
  EXPECT_EQ(report.sessions_failed, 1u);
  swarm.servers[0]->stop();
}

TEST(NetSwarm, SingleSlowPeerStillCompletes) {
  // One peer alone, paced to ~2 Mbps, still delivers the whole file; the
  // client's stop message ends the session cleanly.
  Swarm swarm(1, 30000, /*auth=*/false, 0, nullptr);
  // Re-start the server with pacing.
  swarm.servers[0]->stop();
  p2p::MessageStore store;
  coding::FileEncoder encoder(swarm.secret, 42, swarm.data, kParams);
  for (auto& m : encoder.generate(encoder.k())) store.store(std::move(m));
  PeerServer::Config config;
  config.rate_kbps = 2000.0;
  config.require_auth = false;
  PeerServer paced(config, std::move(store));
  ASSERT_TRUE(paced.start());
  swarm.endpoints[0].port = paced.port();

  DownloadOptions options;
  const DownloadReport report =
      download_file(swarm.endpoints, swarm.secret, swarm.info, options);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.data, swarm.data);
  // 30 kB at 2 Mbps ~ 0.12 s: pacing had a measurable effect.
  EXPECT_GT(report.seconds, 0.05);
  paced.stop();
}

}  // namespace
}  // namespace fairshare::net
