// JSON and Prometheus exporters against committed golden files, plus the
// structural guarantees downstream consumers rely on (line-oriented JSON,
// cumulative Prometheus buckets, atomic dump_json).
//
// Regenerate the goldens after an intentional format change with
//   FAIRSHARE_REGEN_GOLDEN=1 ./obs_export_test
// and review the diff before committing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

#ifndef OBS_GOLDEN_DIR
#define OBS_GOLDEN_DIR "."
#endif

namespace {

using namespace fairshare;

/// A registry whose exporter output is fully deterministic: fixed counter
/// and gauge values, fixed histogram samples, and spans pushed with pinned
/// timestamps (bypassing TraceSpan's real clock).
void fill_registry(obs::MetricsRegistry& reg) {
  reg.counter("fairshare_demo_requests_total", {{"peer", "1"}, {"user", "2"}})
      .add(5);
  reg.counter("fairshare_demo_requests_total", {{"peer", "2"}, {"user", "2"}})
      .add(7);
  reg.counter("plain_total").add(1);
  reg.gauge("fairshare_demo_rate_kbps", {{"user", "2"}}).set(768.25);
  // Exercise escaping (JSON) and name sanitization (Prometheus).
  reg.gauge("needs sanitizing!", {{"key", "quote\"back\\slash"}}).set(-1.5);
  obs::Histogram& h = reg.histogram("fairshare_demo_latency_ns");
  for (std::uint64_t v : {0ull, 1ull, 7ull, 8ull, 9ull, 100ull, 1000ull,
                          123456ull, (1ull << 40) + 5})
    h.record(v);
  obs::SpanRecord a;
  a.id = 11;
  a.parent = 0;
  a.start_ns = 1000;
  a.duration_ns = 500;
  a.name = "outer";
  reg.spans().push(a);
  obs::SpanRecord b;
  b.id = 12;
  b.parent = 11;
  b.start_ns = 1100;
  b.duration_ns = 200;
  b.name = "inner";
  reg.spans().push(b);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void compare_golden(const std::string& actual, const std::string& file) {
  const std::string path = std::string(OBS_GOLDEN_DIR) + "/" + file;
  if (std::getenv("FAIRSHARE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty()) << "missing golden " << path;
  EXPECT_EQ(actual, expected) << "exporter output drifted from " << path
                              << "; regenerate deliberately if intended";
}

TEST(Export, JsonMatchesGolden) {
  obs::MetricsRegistry reg;
  fill_registry(reg);
  compare_golden(obs::to_json(reg), "registry.json");
}

TEST(Export, PrometheusMatchesGolden) {
  obs::MetricsRegistry reg;
  fill_registry(reg);
  compare_golden(obs::to_prometheus(reg), "registry.prom");
}

TEST(Export, JsonIsLineOriented) {
  obs::MetricsRegistry reg;
  fill_registry(reg);
  std::istringstream json(obs::to_json(reg));
  // Every sample occupies exactly one line beginning with '{' — the
  // contract fairshare_cli stats and the benches parse by.
  std::size_t samples = 0;
  for (std::string line; std::getline(json, line);) {
    if (line.empty() || line[0] != '{' ||
        line.find("\"name\":") == std::string::npos)
      continue;
    ++samples;
    const char last = line.back();
    EXPECT_TRUE(last == '}' || last == ',') << line;
  }
  EXPECT_EQ(samples, 3 + 2 + 1 + 2);  // counters + gauges + histogram + spans
}

TEST(Export, PrometheusBucketsAreCumulative) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat");
  for (std::uint64_t v : {1ull, 1ull, 2ull, 9ull}) h.record(v);
  const std::string text = obs::to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE lat histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"2\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"9\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 13\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 4\n"), std::string::npos);
  // Exactly one +Inf series per histogram family.
  const auto first = text.find("le=\"+Inf\"");
  EXPECT_EQ(text.find("le=\"+Inf\"", first + 1), std::string::npos);
}

TEST(Export, DumpJsonWritesAtomically) {
  obs::MetricsRegistry reg;
  reg.counter("c_total").add(9);
  const std::string path = "obs_export_test_dump.json";
  ASSERT_TRUE(obs::dump_json(reg, path));
  const std::string body = read_file(path);
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body.front(), '{');
  EXPECT_NE(body.find("\"c_total\""), std::string::npos);
  // The temp file was renamed away, not left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

}  // namespace
