// SpanRing and TraceSpan: bounded overwrite-oldest semantics, parent
// linkage, and lock-free behavior under concurrent pushers.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace {

using namespace fairshare;

TEST(SpanRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(obs::SpanRing(1).capacity(), 8u);
  EXPECT_EQ(obs::SpanRing(8).capacity(), 8u);
  EXPECT_EQ(obs::SpanRing(9).capacity(), 16u);
  EXPECT_EQ(obs::SpanRing(1000).capacity(), 1024u);
}

TEST(SpanRing, KeepsMostRecentWhenFull) {
  obs::SpanRing ring(8);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    obs::SpanRecord rec;
    rec.id = i;
    rec.name = "s";
    ring.push(rec);
  }
  EXPECT_EQ(ring.pushed(), 20u);
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 8u);
  // Oldest-first within the residents, and the residents are the last 8.
  for (std::size_t i = 0; i < spans.size(); ++i)
    EXPECT_EQ(spans[i].id, 13 + i);
}

TEST(TraceSpan, RecordsDurationAndParent) {
  obs::SpanRing ring(16);
  {
    obs::TraceSpan outer(&ring, "outer");
    ASSERT_NE(outer.id(), 0u);
    { obs::TraceSpan inner(&ring, "inner", outer.id()); }
  }
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner ends first, so it is the older record.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].parent, spans[1].id);
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_GE(spans[1].duration_ns, spans[0].duration_ns);
  EXPECT_LE(spans[1].start_ns, spans[0].start_ns);
}

TEST(TraceSpan, EndIsIdempotentAndNullRingIsNoop) {
  obs::SpanRing ring(8);
  {
    obs::TraceSpan span(&ring, "once");
    span.end();
    span.end();  // second end must not push again
  }
  EXPECT_EQ(ring.pushed(), 1u);
  {
    obs::TraceSpan nothing(nullptr, "never");
    EXPECT_EQ(nothing.id(), 0u);
  }
}

TEST(SpanRing, ConcurrentPushersNeverTearRecords) {
  obs::SpanRing ring(64);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        obs::SpanRecord rec;
        // id encodes the writer; duration must always match it, so a torn
        // read (fields from two writers) is detectable.
        rec.id = static_cast<std::uint64_t>(t + 1) * 1000000 + i;
        rec.duration_ns = rec.id * 2;
        rec.name = "w";
        ring.push(rec);
      }
    });
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load()) {
      for (const obs::SpanRecord& rec : ring.snapshot()) {
        ASSERT_EQ(rec.duration_ns, rec.id * 2) << "torn record";
        ASSERT_STREQ(rec.name, "w");
      }
    }
  });
  for (auto& t : threads) t.join();
  done = true;
  reader.join();
  EXPECT_EQ(ring.pushed(), kThreads * kPerThread);
  const auto spans = ring.snapshot();
  EXPECT_EQ(spans.size(), ring.capacity());
  std::set<std::uint64_t> ids;
  for (const auto& rec : spans) ids.insert(rec.id);
  EXPECT_EQ(ids.size(), spans.size());  // residents are distinct pushes
}

TEST(NextSpanId, UniqueAndNonZero) {
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = obs::next_span_id();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(ids.insert(id).second);
  }
}

}  // namespace
