// MetricsRegistry identity, thread-safety, and snapshot semantics.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace {

using namespace fairshare;

TEST(Counter, AccumulatesAcrossThreads) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAndAdd) {
  obs::Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(42.5);
  EXPECT_EQ(g.value(), 42.5);
  g.add(-2.5);
  EXPECT_EQ(g.value(), 40.0);
}

TEST(Gauge, ConcurrentAddIsLossless) {
  obs::Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.value(), static_cast<double>(kThreads * kPerThread));
}

TEST(MetricsRegistry, SameIdentityReturnsSameInstrument) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x_total", {{"user", "1"}});
  obs::Counter& b = reg.counter("x_total", {{"user", "1"}});
  EXPECT_EQ(&a, &b);
  // Label ORDER is not part of the identity — labels are sorted by key.
  obs::Counter& c =
      reg.counter("y_total", {{"b", "2"}, {"a", "1"}});
  obs::Counter& d =
      reg.counter("y_total", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&c, &d);
}

TEST(MetricsRegistry, DifferentLabelsAreDifferentSeries) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x_total", {{"user", "1"}});
  obs::Counter& b = reg.counter("x_total", {{"user", "2"}});
  obs::Counter& c = reg.counter("x_total");
  EXPECT_NE(&a, &b);
  EXPECT_NE(&a, &c);
  // Same name in a different instrument family is a separate object too.
  a.add(3);
  b.add(4);
  EXPECT_EQ(reg.counter_total("x_total"), 7u);
  EXPECT_EQ(reg.counter_total("missing_total"), 0u);
}

TEST(MetricsRegistry, ConcurrentFindOrCreateIsSafe) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&reg] {
      for (int i = 0; i < 200; ++i) {
        reg.counter("shared_total", {{"i", std::to_string(i % 10)}}).add(1);
        reg.gauge("g", {{"i", std::to_string(i % 10)}}).set(i);
        reg.histogram("h").record(std::uint64_t(i));
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter_total("shared_total"), kThreads * 200u);
  EXPECT_EQ(reg.histogram("h").count(), kThreads * 200u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndComplete) {
  obs::MetricsRegistry reg;
  reg.counter("b_total").add(2);
  reg.counter("a_total", {{"k", "v"}}).add(1);
  reg.gauge("g").set(3.5);
  reg.histogram("h").record(std::uint64_t{7});
  const obs::RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a_total");
  ASSERT_EQ(snap.counters[0].labels.size(), 1u);
  EXPECT_EQ(snap.counters[0].labels[0].first, "k");
  EXPECT_EQ(snap.counters[0].value, 1u);
  EXPECT_EQ(snap.counters[1].name, "b_total");
  EXPECT_EQ(snap.counters[1].value, 2u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 3.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].snap.count, 1u);
  EXPECT_EQ(snap.histograms[0].snap.sum, 7u);
}

TEST(MetricsRegistry, GlobalIsAStableSingleton) {
  obs::MetricsRegistry& a = obs::MetricsRegistry::global();
  obs::MetricsRegistry& b = obs::MetricsRegistry::global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
