// Histogram bucket math and quantile edge cases (satellite: the edges the
// header documents are pinned here).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace {

using namespace fairshare;
using obs::Histogram;

TEST(Histogram, IndexOfIsMonotoneAndInverseOfBoundOf) {
  std::size_t prev = 0;
  for (std::uint64_t v : {0ull, 1ull, 7ull, 8ull, 9ull, 15ull, 16ull, 17ull,
                          100ull, 1000ull, 1ull << 20, (1ull << 20) + 1,
                          (1ull << 39), (1ull << 40) - 1}) {
    const std::size_t idx = Histogram::index_of(v);
    EXPECT_GE(idx, prev) << "index_of not monotone at " << v;
    prev = idx;
    // A bucket's inclusive upper bound maps back into the same bucket.
    EXPECT_EQ(Histogram::index_of(Histogram::bound_of(idx)), idx)
        << "bound_of(" << idx << ") escapes its bucket";
    EXPECT_LE(v, Histogram::bound_of(idx));
  }
  // Exact buckets below kSub.
  for (std::uint64_t v = 0; v < Histogram::kSub; ++v)
    EXPECT_EQ(Histogram::index_of(v), v);
  // Overflow region.
  EXPECT_EQ(Histogram::index_of(1ull << Histogram::kMaxPow),
            Histogram::kOverflowIndex);
  EXPECT_EQ(Histogram::index_of(UINT64_MAX), Histogram::kOverflowIndex);
  EXPECT_EQ(Histogram::bound_of(Histogram::kOverflowIndex), UINT64_MAX);
}

TEST(Histogram, ZeroSamples) {
  Histogram h;
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.quantile(0.0), 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.quantile(1.0), 0.0);
}

TEST(Histogram, SingleSampleIsExactAtEveryQuantile) {
  Histogram h;
  h.record(std::uint64_t{12345});
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 12345u);
  EXPECT_EQ(s.max, 12345u);
  // Clamping into [min, max] makes the log-linear bound exact here.
  for (double q : {0.0, 0.01, 0.5, 0.95, 0.99, 1.0})
    EXPECT_EQ(s.quantile(q), 12345.0) << "q=" << q;
}

TEST(Histogram, ValueBelowFirstBucketBound) {
  Histogram h;
  h.record(std::uint64_t{0});
  h.record(-3.5);                          // clamps to 0
  h.record(std::numeric_limits<double>::quiet_NaN());  // clamps to 0
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.buckets[0], 3u);
  EXPECT_EQ(s.quantile(0.99), 0.0);
}

TEST(Histogram, ValueAboveLastBucketBoundReportsTrackedMax) {
  Histogram h;
  const std::uint64_t huge = (1ull << Histogram::kMaxPow) + 12345;
  h.record(huge);
  h.record(std::uint64_t{100});
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.buckets[Histogram::kOverflowIndex], 1u);
  EXPECT_EQ(s.max, huge);
  // A quantile that lands in the overflow bucket cannot use the bucket
  // bound (UINT64_MAX); it reports the tracked maximum instead.
  EXPECT_EQ(s.quantile(0.99), static_cast<double>(huge));
  EXPECT_LE(s.quantile(0.25), 112.0);  // low quantile stays in band (12.5%)
}

TEST(Histogram, QuantileRelativeErrorStaysInBand) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) h.record(v);
  const Histogram::Snapshot s = h.snapshot();
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = q * 100000.0;
    const double approx = s.quantile(q);
    EXPECT_GE(approx, exact * 0.85) << "q=" << q;
    EXPECT_LE(approx, exact * 1.15) << "q=" << q;
  }
}

TEST(Histogram, MonotoneUnderConcurrentRecording) {
  Histogram h;
  std::atomic<bool> stop{false};
  constexpr int kThreads = 8;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&h, &stop, t] {
      std::uint64_t x = 88172645463325252ull + static_cast<std::uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        h.record(x % 1000000);
      }
    });
  // Quantiles from one Snapshot must be monotone no matter how the racing
  // writers interleave; repeat to give races a chance to materialize.
  for (int round = 0; round < 200; ++round) {
    const Histogram::Snapshot s = h.snapshot();
    double prev = 0.0;
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
      const double v = s.quantile(q);
      EXPECT_GE(v, prev) << "round " << round << " q=" << q;
      prev = v;
    }
    EXPECT_GE(s.count, 0u);
  }
  stop = true;
  for (auto& t : writers) t.join();
  // Final quiesced state: count equals bucket mass, min <= max.
  const Histogram::Snapshot s = h.snapshot();
  std::uint64_t mass = 0;
  for (const auto b : s.buckets) mass += b;
  EXPECT_EQ(mass, s.count);
  EXPECT_LE(s.min, s.max);
}

}  // namespace
