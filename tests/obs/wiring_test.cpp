// The obs subsystem wired through the real stack: PeerServer +
// download_file over TCP report into one registry whose numbers equal the
// returned DownloadReport exactly; allocation_snapshot() stays coherent
// under concurrent hammering (run under TSan via the obs ctest label);
// decoder, policy, fault-injector, and simulator instrumentation round-trip.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "alloc/observed_policy.hpp"
#include "alloc/policies.hpp"
#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "net/download_client.hpp"
#include "net/fault_transport.hpp"
#include "net/peer_server.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace fairshare {
namespace {

constexpr std::uint64_t kFileId = 77;
const coding::CodingParams kParams{gf::FieldId::gf2_32, 256};  // 1 KiB msgs

std::vector<std::byte> blob(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

std::uint64_t counter_value(const obs::RegistrySnapshot& snap,
                            const std::string& name) {
  std::uint64_t total = 0;
  for (const auto& c : snap.counters)
    if (c.name == name) total += c.value;
  return total;
}

TEST(ObsWiring, RegistryMatchesDownloadReportOverTcp) {
  const auto data = blob(20000, 21);
  coding::SecretKey secret{};
  secret[0] = 3;
  coding::FileEncoder encoder(secret, kFileId, data, kParams);

  obs::MetricsRegistry registry;
  const std::string dump_path = "obs_wiring_server_stats.json";
  std::remove(dump_path.c_str());

  std::vector<std::unique_ptr<net::PeerServer>> servers;
  std::vector<net::PeerEndpoint> endpoints;
  for (std::uint64_t p = 0; p < 3; ++p) {
    p2p::MessageStore store;
    for (auto& m : encoder.generate(encoder.k())) store.store(std::move(m));
    net::PeerServer::Config config;
    config.peer_id = p;
    config.require_auth = false;
    config.rate_kbps = 4000.0;
    config.registry = &registry;
    if (p == 0) config.stats_json_path = dump_path;
    auto server = std::make_unique<net::PeerServer>(config, std::move(store));
    ASSERT_TRUE(server->start());
    net::PeerEndpoint ep;
    ep.port = server->port();
    ep.peer_id = p;
    endpoints.push_back(ep);
    servers.push_back(std::move(server));
  }

  net::DownloadOptions options;
  options.user_id = 9;
  options.registry = &registry;
  const net::DownloadReport report =
      net::download_file(endpoints, secret, encoder.info(), options);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.data, data);

  // The registry and the report were incremented at the same sites, so
  // they must agree EXACTLY, per peer and in total.
  const obs::RegistrySnapshot snap = registry.snapshot();
  std::uint64_t report_frames = 0;
  for (const net::PeerDownloadStats& ps : report.per_peer) {
    const obs::LabelList labels = {{"peer", std::to_string(ps.peer_id)},
                                   {"user", "9"}};
    EXPECT_EQ(registry.counter("fairshare_client_attempts_total", labels)
                  .value(),
              ps.attempts);
    EXPECT_EQ(
        registry.counter("fairshare_client_bytes_received_total", labels)
            .value(),
        ps.bytes_received);
    EXPECT_EQ(
        registry
            .counter("fairshare_client_messages_innovative_total", labels)
            .value(),
        ps.messages_accepted);
    EXPECT_EQ(
        registry.counter("fairshare_client_messages_redundant_total", labels)
            .value(),
        ps.messages_redundant);
    EXPECT_EQ(
        registry.counter("fairshare_client_messages_rejected_total", labels)
            .value(),
        ps.messages_rejected);
    report_frames +=
        registry.counter("fairshare_client_frames_total", labels).value();
  }
  EXPECT_EQ(registry.counter_total("fairshare_client_bytes_received_total"),
            report.bytes_received);
  EXPECT_GT(report_frames, 0u);
  // Innovative-vs-redundant ratio is derivable and the innovative count is
  // the decode threshold k by construction.
  EXPECT_EQ(
      registry.counter_total("fairshare_client_messages_innovative_total"),
      report.messages_accepted);

  // Decoder instrumentation rode along via download_file.
  EXPECT_GT(counter_value(snap, "fairshare_client_frames_total"), 0u);
  bool saw_rank_gauge = false;
  for (const auto& g : snap.gauges)
    if (g.name == "fairshare_decoder_rank") {
      saw_rank_gauge = true;
      EXPECT_EQ(g.value, static_cast<double>(encoder.k()));
    }
  EXPECT_TRUE(saw_rank_gauge);

  // Server side: per-user byte counters equal the accessor exactly, and
  // the session span made it into the ring.
  for (std::uint64_t p = 0; p < servers.size(); ++p) {
    const obs::LabelList labels = {{"peer", std::to_string(p)},
                                   {"user", "9"}};
    EXPECT_EQ(
        registry.counter("fairshare_server_user_bytes_total", labels).value(),
        servers[p]->user_bytes_sent(9));
  }
  bool saw_session_span = false, saw_download_span = false;
  for (const obs::SpanRecord& rec : registry.spans().snapshot()) {
    if (std::string_view(rec.name) == "server.session") saw_session_span = true;
    if (std::string_view(rec.name) == "client.download")
      saw_download_span = true;
  }
  EXPECT_TRUE(saw_session_span);
  EXPECT_TRUE(saw_download_span);

  // stop() writes the at-exit JSON dump for peer 0.
  for (auto& s : servers) s->stop();
  std::ifstream dump(dump_path);
  ASSERT_TRUE(dump.good()) << "missing " << dump_path;
  std::ostringstream body;
  body << dump.rdbuf();
  EXPECT_NE(body.str().find("fairshare_server_user_bytes_total"),
            std::string::npos);
  std::remove(dump_path.c_str());
}

TEST(ObsWiring, AllocationSnapshotCoherentUnderConcurrentSessions) {
  const auto data = blob(20000, 22);
  coding::SecretKey secret{};
  secret[0] = 4;
  coding::FileEncoder encoder(secret, kFileId, data, kParams);
  p2p::MessageStore store;
  for (auto& m : encoder.generate(400)) store.store(std::move(m));

  obs::MetricsRegistry registry;
  net::PeerServer::Config config;
  config.require_auth = false;
  config.rate_kbps = 3000.0;
  config.max_sessions = 8;
  config.registry = &registry;
  net::PeerServer server(config, std::move(store));
  ASSERT_TRUE(server.start());

  net::PeerEndpoint endpoint;
  endpoint.port = server.port();

  // Three users download concurrently while a hammer thread snapshots the
  // allocation state as fast as it can.  Under TSan this is the
  // data-race proof; the invariant checks below pin coherence: per-user
  // bytes are monotone across successive snapshots (a torn copy would
  // break that), and session counts never exceed the configured bound.
  std::atomic<bool> stop_hammer{false};
  std::atomic<int> violations{0};
  std::thread hammer([&] {
    std::vector<std::uint64_t> last_bytes(8, 0);
    while (!stop_hammer.load()) {
      const auto snap = server.allocation_snapshot();
      std::size_t sessions = 0;
      for (std::size_t i = 0; i < snap.size(); ++i) {
        if (i < last_bytes.size()) {
          if (snap[i].bytes_sent < last_bytes[i]) ++violations;
          last_bytes[i] = snap[i].bytes_sent;
        }
        sessions += snap[i].active_sessions;
        if (snap[i].rate_kbps < 0.0) ++violations;
      }
      if (sessions > config.max_sessions) ++violations;
    }
  });

  std::vector<std::thread> clients;
  std::vector<net::DownloadReport> reports(3);
  for (std::uint64_t u = 0; u < 3; ++u)
    clients.emplace_back([&, u] {
      net::DownloadOptions options;
      options.user_id = u + 1;
      options.registry = &registry;
      reports[u] =
          net::download_file({endpoint}, secret, encoder.info(), options);
    });
  for (auto& t : clients) t.join();
  stop_hammer = true;
  hammer.join();

  for (const auto& report : reports) EXPECT_TRUE(report.success);
  EXPECT_EQ(violations.load(), 0);
  // The clients have returned but each server-side handler still drains
  // its stop frame; wait for the session registry to empty out.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  while (server.active_sessions() > 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const auto final_snap = server.allocation_snapshot();
  EXPECT_EQ(final_snap.size(), 3u);
  for (const auto& share : final_snap) {
    EXPECT_GT(share.bytes_sent, 0u);
    EXPECT_EQ(share.active_sessions, 0u);  // all sessions drained
  }
  server.stop();
}

TEST(ObsWiring, DecoderMetricsTrackRankAndEliminations) {
  const auto data = blob(8000, 23);
  coding::SecretKey secret{};
  secret[0] = 5;
  coding::FileEncoder encoder(secret, kFileId, data, kParams);
  obs::MetricsRegistry registry;
  const auto messages = encoder.generate(encoder.k() + 2);
  coding::FileDecoder decoder(secret, encoder.info());  // digests cover all
  decoder.enable_metrics(registry, /*user_id=*/4);
  std::size_t added = 0;
  for (const auto& msg : messages) {
    decoder.add(msg);
    ++added;
  }
  ASSERT_TRUE(decoder.complete());
  const obs::LabelList labels = {{"file", std::to_string(kFileId)},
                                 {"user", "4"},
                                 {"codec", "dense"}};
  EXPECT_EQ(registry.gauge("fairshare_decoder_rank", labels).value(),
            static_cast<double>(decoder.rank()));
  // One elimination per add that reached the solver; adds arriving after
  // completion short-circuit (already_complete) and are not timed.
  const std::uint64_t eliminations =
      registry.histogram("fairshare_decoder_eliminate_ns", labels).count();
  EXPECT_GE(eliminations, decoder.rank());
  EXPECT_LE(eliminations, added);
}

TEST(ObsWiring, ObservedPolicyPublishesShares) {
  obs::MetricsRegistry registry;
  alloc::ObservedPolicy policy(
      std::make_unique<alloc::ProportionalContributionPolicy>(2), registry,
      "7");
  std::vector<std::uint8_t> requesting = {1, 1};
  std::vector<double> declared = {0.0, 0.0};
  std::vector<double> shares(2);
  alloc::PeerContext ctx;
  ctx.self = 0;
  ctx.slot = 1;
  ctx.capacity = 1000.0;
  ctx.requesting = requesting;
  ctx.declared = declared;
  policy.allocate(ctx, shares);
  EXPECT_EQ(registry
                .counter("fairshare_alloc_allocations_total", {{"peer", "7"}})
                .value(),
            1u);
  double total = 0.0;
  for (std::size_t u = 0; u < 2; ++u)
    total += registry
                 .gauge("fairshare_alloc_share_kbps",
                        {{"peer", "7"}, {"user", std::to_string(u)}})
                 .value();
  EXPECT_NEAR(total, 1000.0, 1e-9);  // gauges mirror the allocate() output
}

TEST(ObsWiring, FaultInjectorMirrorsStatsIntoRegistry) {
  obs::MetricsRegistry registry;
  net::FaultPlan plan;
  plan.seed = 99;
  plan.refuse_connection = true;
  net::FaultInjector injector(plan, &registry);
  EXPECT_FALSE(injector.admits_connection());
  EXPECT_FALSE(injector.admits_connection());
  EXPECT_EQ(injector.stats().connections_refused, 2u);
  EXPECT_EQ(registry
                .counter("fairshare_faults_connections_refused_total",
                         {{"seed", "99"}})
                .value(),
            2u);
  // Without a registry nothing is mirrored (and nothing crashes).
  net::FaultInjector silent(plan);
  EXPECT_FALSE(silent.admits_connection());
  EXPECT_EQ(registry.counter_total("fairshare_faults_connections_refused_total"),
            2u);
}

TEST(ObsWiring, SimulatorBridgesIntoRegistry) {
  obs::MetricsRegistry registry;
  std::vector<sim::PeerSetup> peers;
  for (double u : {100.0, 300.0}) {
    sim::PeerSetup p;
    p.upload_kbps = u;
    p.demand = std::make_shared<sim::AlwaysDemand>();
    p.policy = std::make_shared<alloc::ProportionalContributionPolicy>(2);
    peers.push_back(std::move(p));
  }
  sim::SimConfig config;
  config.registry = &registry;
  sim::Simulator simulator(std::move(peers), config);
  simulator.run(25);
  EXPECT_EQ(registry.counter_total("fairshare_sim_slots_total"), 25u);
  bool saw_slot_span = false;
  for (const obs::SpanRecord& rec : registry.spans().snapshot())
    if (std::string_view(rec.name) == "sim.slot") saw_slot_span = true;
  EXPECT_TRUE(saw_slot_span);

  sim::publish_metrics(simulator, registry);
  EXPECT_EQ(registry.gauge("fairshare_sim_slots").value(), 25.0);
  const double jain = registry.gauge("fairshare_sim_jain").value();
  EXPECT_GT(jain, 0.0);
  EXPECT_LE(jain, 1.0);
  for (std::size_t u = 0; u < 2; ++u) {
    const obs::LabelList labels = {{"user", std::to_string(u)}};
    EXPECT_GT(
        registry.gauge("fairshare_sim_avg_download_kbps", labels).value(),
        0.0);
  }
}

}  // namespace
}  // namespace fairshare
