// LT fountain codes (digital-fountain baseline).
#include <gtest/gtest.h>

#include <vector>

#include "coding/fountain.hpp"
#include "sim/rng.hpp"

namespace fairshare::coding {
namespace {

std::vector<std::byte> random_data(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

TEST(RobustSoliton, PmfSumsToOne) {
  for (std::size_t k : {1u, 2u, 10u, 100u, 1000u}) {
    RobustSoliton dist(k);
    double sum = 0.0;
    for (std::size_t d = 1; d <= k; ++d) sum += dist.pmf(d);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "k=" << k;
  }
}

TEST(RobustSoliton, SamplesStayInRange) {
  RobustSoliton dist(50);
  sim::SplitMix64 rng(1);
  for (int i = 0; i < 5000; ++i) {
    const std::size_t d = dist.sample(rng);
    EXPECT_GE(d, 1u);
    EXPECT_LE(d, 50u);
  }
}

TEST(RobustSoliton, LowDegreesDominate) {
  // The soliton shape: degrees 1 and 2 carry substantial mass (degree 2
  // the most), enabling the peeling process to start and continue.
  RobustSoliton dist(100);
  EXPECT_GT(dist.pmf(1), 0.005);
  EXPECT_GT(dist.pmf(2), 0.3);
  EXPECT_GT(dist.pmf(2), dist.pmf(3));
  EXPECT_GT(dist.pmf(3), dist.pmf(10));
}

TEST(RobustSoliton, EmpiricalMeanMatchesPmf) {
  RobustSoliton dist(64);
  sim::SplitMix64 rng(2);
  double expected = 0.0;
  for (std::size_t d = 1; d <= 64; ++d)
    expected += static_cast<double>(d) * dist.pmf(d);
  double sum = 0.0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i)
    sum += static_cast<double>(dist.sample(rng));
  EXPECT_NEAR(sum / trials, expected, 0.15);
}

TEST(LtCodec, RoundTripSmall) {
  const auto data = random_data(1000, 3);
  LtEncoder enc(data, 100);  // k = 10
  EXPECT_EQ(enc.k(), 10u);
  LtDecoder dec(enc.k(), enc.block_bytes(), data.size());
  sim::SplitMix64 rng(4);
  while (!dec.complete()) dec.add(enc.next_symbol(rng));
  EXPECT_EQ(dec.reconstruct(), data);
}

TEST(LtCodec, RoundTripUnevenTail) {
  const auto data = random_data(1037, 5);  // tail block padded
  LtEncoder enc(data, 128);
  LtDecoder dec(enc.k(), enc.block_bytes(), data.size());
  sim::SplitMix64 rng(6);
  while (!dec.complete()) dec.add(enc.next_symbol(rng));
  EXPECT_EQ(dec.reconstruct(), data);
}

TEST(LtCodec, SingleBlockDegenerate) {
  const auto data = random_data(50, 7);
  LtEncoder enc(data, 64);  // k = 1
  EXPECT_EQ(enc.k(), 1u);
  LtDecoder dec(1, 64, data.size());
  sim::SplitMix64 rng(8);
  dec.add(enc.next_symbol(rng));
  ASSERT_TRUE(dec.complete());
  EXPECT_EQ(dec.reconstruct(), data);
}

TEST(LtCodec, OverheadIsModest) {
  // LT needs k(1 + eps) symbols; for k = 256 eps should be well under 60%.
  const auto data = random_data(256 * 64, 9);
  LtEncoder enc(data, 64);
  ASSERT_EQ(enc.k(), 256u);
  double total_overhead = 0.0;
  const int trials = 10;
  sim::SplitMix64 rng(10);
  for (int t = 0; t < trials; ++t) {
    LtDecoder dec(enc.k(), enc.block_bytes(), data.size());
    while (!dec.complete()) dec.add(enc.next_symbol(rng));
    EXPECT_EQ(dec.reconstruct(), data);
    total_overhead += static_cast<double>(dec.symbols_received()) / 256.0;
  }
  const double avg = total_overhead / trials;
  EXPECT_GT(avg, 1.0);   // strictly more than k (fountain overhead exists)
  EXPECT_LT(avg, 1.6);   // but bounded
}

TEST(LtCodec, RedundantSymbolsAreAbsorbed) {
  const auto data = random_data(640, 11);
  LtEncoder enc(data, 64);
  LtDecoder dec(enc.k(), enc.block_bytes(), data.size());
  sim::SplitMix64 rng(12);
  const LtSymbol sym = enc.next_symbol(rng);
  dec.add(sym);
  dec.add(sym);  // duplicate: must not crash or double-count
  while (!dec.complete()) dec.add(enc.next_symbol(rng));
  EXPECT_EQ(dec.reconstruct(), data);
}

TEST(LtCodec, PeelingCascades) {
  // Hand-built symbols: {0}, {0,1}, {1,2} — adding in reverse order only
  // resolves once the degree-1 symbol arrives, then cascades to all three.
  const auto data = random_data(3 * 16, 13);
  LtEncoder enc(data, 16);
  ASSERT_EQ(enc.k(), 3u);

  auto make = [&](std::vector<std::uint32_t> sources) {
    LtSymbol s;
    s.sources = sources;
    s.payload.assign(16, std::byte{0});
    for (std::uint32_t src : sources)
      for (std::size_t i = 0; i < 16; ++i)
        s.payload[i] ^= data[src * 16 + i];
    return s;
  };

  LtDecoder dec(3, 16, data.size());
  dec.add(make({1, 2}));
  dec.add(make({0, 1}));
  EXPECT_EQ(dec.decoded_blocks(), 0u);
  dec.add(make({0}));
  EXPECT_TRUE(dec.complete());  // cascade released everything
  EXPECT_EQ(dec.reconstruct(), data);
}

}  // namespace
}  // namespace fairshare::coding
