// Incremental file updates (re-encode only changed units).
#include <gtest/gtest.h>

#include <vector>

#include "coding/update.hpp"
#include "sim/rng.hpp"

namespace fairshare::coding {
namespace {

SecretKey secret(std::uint8_t tag) {
  SecretKey s{};
  s[0] = tag;
  return s;
}

std::vector<std::byte> random_data(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

constexpr std::size_t kUnit = 4096;
const CodingParams kParams{gf::FieldId::gf2_32, 64};

TEST(Update, NoChangeMeansEmptyPlan) {
  const auto data = random_data(3 * kUnit, 1);
  ChunkedEncoder enc(secret(1), 100, data, kParams, kUnit);
  const UpdatePlan plan = plan_update(enc.info(), data);
  EXPECT_TRUE(plan.changed_units.empty());
  EXPECT_EQ(plan.new_unit_count, 3u);
  EXPECT_EQ(plan.unchanged_units(), 3u);
}

TEST(Update, SingleByteEditTouchesOneUnit) {
  const auto data = random_data(4 * kUnit, 2);
  ChunkedEncoder enc(secret(1), 100, data, kParams, kUnit);
  auto modified = data;
  modified[2 * kUnit + 17] ^= std::byte{1};  // inside unit 2
  const UpdatePlan plan = plan_update(enc.info(), modified);
  EXPECT_EQ(plan.changed_units, (std::vector<std::size_t>{2}));
}

TEST(Update, EditStraddlingUnitsTouchesBoth) {
  const auto data = random_data(3 * kUnit, 3);
  ChunkedEncoder enc(secret(1), 100, data, kParams, kUnit);
  auto modified = data;
  modified[kUnit - 1] ^= std::byte{1};
  modified[kUnit] ^= std::byte{1};
  const UpdatePlan plan = plan_update(enc.info(), modified);
  EXPECT_EQ(plan.changed_units, (std::vector<std::size_t>{0, 1}));
}

TEST(Update, AppendedDataIsNewUnits) {
  const auto data = random_data(2 * kUnit, 4);
  ChunkedEncoder enc(secret(1), 100, data, kParams, kUnit);
  auto grown = data;
  const auto extra = random_data(kUnit + 100, 5);
  grown.insert(grown.end(), extra.begin(), extra.end());
  const UpdatePlan plan = plan_update(enc.info(), grown);
  EXPECT_EQ(plan.changed_units, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(plan.new_unit_count, 4u);
}

TEST(Update, TailLengthChangeDetected) {
  const auto data = random_data(2 * kUnit + 100, 6);
  ChunkedEncoder enc(secret(1), 100, data, kParams, kUnit);
  auto longer = data;
  longer.push_back(std::byte{0x5A});  // tail unit grows by one byte
  const UpdatePlan plan = plan_update(enc.info(), longer);
  EXPECT_EQ(plan.changed_units, (std::vector<std::size_t>{2}));
}

TEST(Update, ShrinkDropsTrailingUnits) {
  const auto data = random_data(4 * kUnit, 7);
  ChunkedEncoder enc(secret(1), 100, data, kParams, kUnit);
  const std::vector<std::byte> shorter(data.begin(),
                                       data.begin() + 2 * kUnit);
  const UpdatePlan plan = plan_update(enc.info(), shorter);
  EXPECT_TRUE(plan.changed_units.empty());
  EXPECT_EQ(plan.new_unit_count, 2u);
  EXPECT_EQ(plan.old_unit_count, 4u);
}

TEST(Update, RetransmitCostScalesWithChangedUnits) {
  const auto data = random_data(8 * kUnit, 8);
  ChunkedEncoder enc(secret(1), 100, data, kParams, kUnit);
  auto modified = data;
  modified[0] ^= std::byte{1};  // one of eight units
  const UpdatePlan plan = plan_update(enc.info(), modified);
  const std::size_t incremental = plan.retransmit_bytes(5, kParams);
  const std::size_t full = plan.full_retransmit_bytes(5, kParams);
  EXPECT_EQ(full, 8 * incremental);  // 8x saving for a 1-unit edit
}

TEST(Update, AppliedUpdateDecodesToNewContent) {
  const auto data = random_data(3 * kUnit, 9);
  ChunkedEncoder enc(secret(1), 100, data, kParams, kUnit);
  // Pre-generate old messages (what peers already store).
  std::vector<std::vector<EncodedMessage>> old_messages;
  for (std::size_t u = 0; u < enc.units(); ++u)
    old_messages.push_back(enc.unit(u).generate(enc.unit(u).k()));
  const ChunkedFileInfo old_info = enc.info();

  auto modified = data;
  modified[kUnit + 5] ^= std::byte{0xFF};  // unit 1 changes

  FileUpdate update = apply_update(secret(1), old_info, modified, 500);
  ASSERT_EQ(update.changed_units, (std::vector<std::size_t>{1}));
  ASSERT_EQ(update.encoders.size(), 1u);
  // Unchanged units keep their ids; the changed one moved to 500 + 1.
  EXPECT_EQ(update.info.units[0].file_id, old_info.units[0].file_id);
  EXPECT_EQ(update.info.units[1].file_id, 501u);
  EXPECT_EQ(update.info.units[2].file_id, old_info.units[2].file_id);

  // New-version messages for the changed unit only.
  auto fresh = update.encoders[0]->generate(update.encoders[0]->k());
  // Refresh digests for the changed unit in the carried metadata.
  update.info.units[1] = update.encoders[0]->info();

  ChunkedDecoder dec(secret(1), update.info);
  for (const auto& m : old_messages[0]) dec.add(m);
  for (const auto& m : fresh) dec.add(m);
  for (const auto& m : old_messages[2]) dec.add(m);
  ASSERT_TRUE(dec.complete());
  EXPECT_EQ(dec.reconstruct(), modified);
}

TEST(Update, StaleMessagesOfChangedUnitAreRejected) {
  const auto data = random_data(2 * kUnit, 10);
  ChunkedEncoder enc(secret(1), 100, data, kParams, kUnit);
  std::vector<std::vector<EncodedMessage>> old_messages;
  for (std::size_t u = 0; u < enc.units(); ++u)
    old_messages.push_back(enc.unit(u).generate(enc.unit(u).k()));

  auto modified = data;
  modified[3] ^= std::byte{1};  // unit 0 changes
  FileUpdate update = apply_update(secret(1), enc.info(), modified, 700);
  update.info.units[0] = update.encoders[0]->info();

  ChunkedDecoder dec(secret(1), update.info);
  // Old unit-0 messages carry the old file id (100), which no longer
  // exists in the updated metadata (unit 0 is now 700).
  EXPECT_EQ(dec.add(old_messages[0][0]), AddResult::wrong_file);
}

}  // namespace
}  // namespace fairshare::coding
