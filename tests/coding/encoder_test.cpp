// Encoder-specific behaviors beyond the codec round trips.
#include <gtest/gtest.h>

#include <vector>

#include "coding/encoder.hpp"
#include "sim/rng.hpp"

namespace fairshare::coding {
namespace {

SecretKey secret(std::uint8_t tag) {
  SecretKey s{};
  s[0] = tag;
  return s;
}

std::vector<std::byte> blob(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

const CodingParams kParams{gf::FieldId::gf2_32, 64};

TEST(Encoder, MessageIdsAreDeterministic) {
  const auto data = blob(3000, 1);
  FileEncoder a(secret(1), 1, data, kParams);
  FileEncoder b(secret(1), 1, data, kParams);
  const auto ma = a.generate(2 * a.k());
  const auto mb = b.generate(2 * b.k());
  ASSERT_EQ(ma.size(), mb.size());
  for (std::size_t i = 0; i < ma.size(); ++i) {
    EXPECT_EQ(ma[i].message_id, mb[i].message_id);
    EXPECT_EQ(ma[i].payload, mb[i].payload);
  }
}

TEST(Encoder, PayloadDependsOnData) {
  const auto d1 = blob(3000, 2);
  auto d2 = d1;
  d2[100] ^= std::byte{1};
  FileEncoder a(secret(1), 1, d1, kParams);
  FileEncoder b(secret(1), 1, d2, kParams);
  EXPECT_NE(a.generate(1)[0].payload, b.generate(1)[0].payload);
}

TEST(Encoder, InfoTracksGeneratedDigests) {
  const auto data = blob(3000, 3);
  FileEncoder enc(secret(1), 1, data, kParams);
  EXPECT_TRUE(enc.info().message_digests.empty());
  enc.generate(3);
  EXPECT_EQ(enc.info().message_digests.size(), 3u);
  enc.generate(2);
  EXPECT_EQ(enc.info().message_digests.size(), 5u);
  EXPECT_EQ(enc.messages_generated(), 5u);
}

TEST(Encoder, ContentDigestMatchesInput) {
  const auto data = blob(3000, 4);
  FileEncoder enc(secret(1), 1, data, kParams);
  EXPECT_EQ(enc.info().content_digest,
            crypto::Md5::hash(std::span<const std::byte>(data)));
}

TEST(Encoder, KMatchesParamsArithmetic) {
  for (std::size_t bytes : {1u, 255u, 256u, 257u, 4096u, 10000u}) {
    const auto data = blob(bytes, 5);
    FileEncoder enc(secret(1), 1, data, kParams);
    EXPECT_EQ(enc.k(), chunks_for_bytes(bytes, kParams)) << bytes;
    EXPECT_EQ(enc.info().original_bytes, bytes);
  }
}

TEST(Encoder, SingleByteFile) {
  const std::vector<std::byte> data{std::byte{0xAB}};
  FileEncoder enc(secret(1), 1, data, kParams);
  EXPECT_EQ(enc.k(), 1u);
  const auto msg = enc.generate(1)[0];
  EXPECT_EQ(msg.payload.size(), kParams.message_bytes());
}

TEST(Encoder, PayloadSizesUniformAcrossFields) {
  for (gf::FieldId field : gf::kAllFields) {
    const CodingParams params{field, 128};
    const auto data = blob(2000, 6);
    FileEncoder enc(secret(1), 1, data, params);
    const auto msg = enc.generate(1)[0];
    EXPECT_EQ(msg.payload.size(), params.message_bytes())
        << gf::field_name(field);
  }
}

TEST(Encoder, DifferentFilesSameSecretDiffer) {
  const auto data = blob(3000, 7);
  FileEncoder a(secret(1), 1, data, kParams);
  FileEncoder b(secret(1), 2, data, kParams);
  // Same data, same secret, different file id -> different coefficients.
  EXPECT_NE(a.generate(1)[0].payload, b.generate(1)[0].payload);
}

TEST(Encoder, ManyBatchesStayDecodableIndividually) {
  // Every batch of k consecutive generated messages is invertible (the
  // screening invariant) — verified over 8 batches via rank tracking.
  const CodingParams params{gf::FieldId::gf2_4, 64};  // small field: rank
                                                      // collisions do occur
  const auto data = blob(400, 8);
  FileEncoder enc(secret(1), 1, data, params);
  const std::size_t k = enc.k();
  const CoefficientGenerator gen(secret(1), 1, params, k);
  for (int batch = 0; batch < 8; ++batch) {
    linalg::IncrementalRank tracker(params.field, k);
    for (const auto& msg : enc.generate(k))
      EXPECT_TRUE(tracker.add_row(gen.row_symbols(msg.message_id)))
          << "batch " << batch;
    EXPECT_TRUE(tracker.full());
  }
}

}  // namespace
}  // namespace fairshare::coding
