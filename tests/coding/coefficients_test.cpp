// Secret-keyed coefficient rows: determinism, secrecy, uniformity.
#include <gtest/gtest.h>

#include "coding/coefficients.hpp"

namespace fairshare::coding {
namespace {

SecretKey secret(std::uint8_t tag) {
  SecretKey s{};
  s[0] = tag;
  return s;
}

class CoefficientsTest : public ::testing::TestWithParam<gf::FieldId> {
 protected:
  CodingParams params() const { return CodingParams{GetParam(), 1024}; }
};

TEST_P(CoefficientsTest, DeterministicAcrossInstances) {
  const CoefficientGenerator a(secret(1), 42, params(), 16);
  const CoefficientGenerator b(secret(1), 42, params(), 16);
  for (std::uint64_t mid : {0ull, 1ull, 1000ull, ~0ull}) {
    EXPECT_EQ(a.row(mid), b.row(mid)) << "message id " << mid;
  }
}

TEST_P(CoefficientsTest, DifferentMessageIdsDiffer) {
  const CoefficientGenerator g(secret(1), 42, params(), 16);
  EXPECT_NE(g.row(0), g.row(1));
  EXPECT_NE(g.row(1), g.row(2));
}

TEST_P(CoefficientsTest, DifferentSecretsDiffer) {
  const CoefficientGenerator a(secret(1), 42, params(), 16);
  const CoefficientGenerator b(secret(2), 42, params(), 16);
  EXPECT_NE(a.row(0), b.row(0));
}

TEST_P(CoefficientsTest, DifferentFilesDiffer) {
  const CoefficientGenerator a(secret(1), 42, params(), 16);
  const CoefficientGenerator b(secret(1), 43, params(), 16);
  EXPECT_NE(a.row(0), b.row(0));
}

TEST_P(CoefficientsTest, SymbolsAreInField) {
  const CoefficientGenerator g(secret(3), 1, params(), 64);
  const auto symbols = g.row_symbols(7);
  ASSERT_EQ(symbols.size(), 64u);
  for (std::uint64_t s : symbols) EXPECT_LT(s, gf::field_order(GetParam()));
}

TEST_P(CoefficientsTest, RowSymbolsMatchPackedRow) {
  const CoefficientGenerator g(secret(4), 9, params(), 32);
  const auto packed = g.row(11);
  const auto symbols = g.row_symbols(11);
  const auto& f = gf::field_view(GetParam());
  for (std::size_t j = 0; j < symbols.size(); ++j)
    EXPECT_EQ(f.get(packed.data(), j), symbols[j]);
}

TEST_P(CoefficientsTest, SymbolsLookUniform) {
  // Mean of symbols over many rows should be near (q-1)/2.
  const std::size_t k = 64;
  const CoefficientGenerator g(secret(5), 2, params(), k);
  double sum = 0.0;
  std::size_t count = 0;
  for (std::uint64_t mid = 0; mid < 64; ++mid) {
    for (std::uint64_t s : g.row_symbols(mid)) {
      sum += static_cast<double>(s);
      ++count;
    }
  }
  const double mean = sum / static_cast<double>(count);
  const double expected =
      static_cast<double>(gf::field_order(GetParam()) - 1) / 2.0;
  EXPECT_NEAR(mean, expected, expected * 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllFields, CoefficientsTest,
                         ::testing::Values(gf::FieldId::gf2_4,
                                           gf::FieldId::gf2_8,
                                           gf::FieldId::gf2_16,
                                           gf::FieldId::gf2_32));

}  // namespace
}  // namespace fairshare::coding
