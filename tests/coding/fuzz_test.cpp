// Randomized end-to-end exercises of the codec: random fields, message
// lengths, file sizes, arrival orders, duplicate/tamper injections.
// Deterministic seeds; 60 scenarios.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "sim/rng.hpp"

namespace fairshare::coding {
namespace {

TEST(CodecFuzz, RandomScenariosAlwaysRoundTrip) {
  sim::SplitMix64 rng(20060701);
  for (int scenario = 0; scenario < 60; ++scenario) {
    // --- random configuration -----------------------------------------
    const gf::FieldId field =
        gf::kAllFields[rng.next_below(4)];
    // Even m in [16, 272] keeps GF(2^4) byte-aligned and tests odd-ish
    // shapes for everyone else.
    const std::size_t m = 16 + 2 * rng.next_below(129);
    const std::size_t bytes = 1 + rng.next_below(20000);
    const CodingParams params{field, m};

    SecretKey secret{};
    secret[0] = static_cast<std::uint8_t>(scenario);
    std::vector<std::byte> data(bytes);
    for (auto& b : data) b = std::byte{static_cast<std::uint8_t>(rng.next())};

    FileEncoder encoder(secret, 1 + scenario, data, params);
    const std::size_t k = encoder.k();

    // --- generate a redundant pool and shuffle arrivals ----------------
    const std::size_t pool_size = k + 1 + rng.next_below(k + 1);
    auto pool = encoder.generate(pool_size);
    for (std::size_t i = pool.size(); i-- > 1;)
      std::swap(pool[i], pool[rng.next_below(i + 1)]);

    // --- inject duplicates and tampered copies -------------------------
    std::vector<EncodedMessage> arrivals;
    std::size_t tampered = 0;
    for (const auto& msg : pool) {
      if (rng.next_below(5) == 0) arrivals.push_back(msg);  // duplicate
      if (rng.next_below(4) == 0) {
        auto bad = msg;
        bad.payload[rng.next_below(bad.payload.size())] ^=
            std::byte{static_cast<std::uint8_t>(1 + rng.next_below(255))};
        arrivals.push_back(bad);
        ++tampered;
      }
      arrivals.push_back(msg);
    }

    // --- decode ---------------------------------------------------------
    FileDecoder decoder(secret, encoder.info());
    std::size_t rejected = 0;
    for (const auto& msg : arrivals) {
      if (decoder.complete()) break;
      if (decoder.add(msg) == AddResult::bad_digest) ++rejected;
    }
    ASSERT_TRUE(decoder.complete())
        << "scenario " << scenario << " field "
        << gf::field_name(field) << " m=" << m << " bytes=" << bytes
        << " rank " << decoder.rank() << "/" << k;
    EXPECT_EQ(decoder.reconstruct(), data) << "scenario " << scenario;
    EXPECT_LE(rejected, tampered) << "scenario " << scenario;
    // Every tampered copy that was seen before completion must have been
    // rejected, never absorbed: reconstruct() equality above proves it.
  }
}

TEST(CodecFuzz, AllFieldsAllSmallSizes) {
  // Exhaustive small-size sweep: every field x file sizes 1..64 bytes.
  sim::SplitMix64 rng(99);
  for (gf::FieldId field : gf::kAllFields) {
    const CodingParams params{field, 16};
    for (std::size_t bytes = 1; bytes <= 64; ++bytes) {
      SecretKey secret{};
      secret[0] = static_cast<std::uint8_t>(bytes);
      std::vector<std::byte> data(bytes);
      for (auto& b : data)
        b = std::byte{static_cast<std::uint8_t>(rng.next())};
      FileEncoder encoder(secret, bytes, data, params);
      const auto messages = encoder.generate(encoder.k());
      FileDecoder decoder(secret, encoder.info());  // digests now known
      for (const auto& msg : messages) decoder.add(msg);
      ASSERT_TRUE(decoder.complete())
          << gf::field_name(field) << " bytes=" << bytes;
      ASSERT_EQ(decoder.reconstruct(), data)
          << gf::field_name(field) << " bytes=" << bytes;
    }
  }
}

}  // namespace
}  // namespace fairshare::coding
