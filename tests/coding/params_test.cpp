// Coding-parameter arithmetic; includes the exact Table I grid.
#include <gtest/gtest.h>

#include "coding/params.hpp"

namespace fairshare::coding {
namespace {

TEST(Params, TableOneExactGrid) {
  // Table I: messages k required for 1 MB across (q, m).  k = 2^23/(m*p).
  struct Row {
    gf::FieldId field;
    std::size_t expected[6];  // m = 2^13 .. 2^18
  };
  const Row rows[] = {
      {gf::FieldId::gf2_4, {256, 128, 64, 32, 16, 8}},
      {gf::FieldId::gf2_8, {128, 64, 32, 16, 8, 4}},
      {gf::FieldId::gf2_16, {64, 32, 16, 8, 4, 2}},
      {gf::FieldId::gf2_32, {32, 16, 8, 4, 2, 1}},
  };
  const std::size_t megabyte = 1u << 20;
  for (const Row& row : rows) {
    for (int j = 0; j < 6; ++j) {
      const CodingParams params{row.field, std::size_t{1} << (13 + j)};
      EXPECT_EQ(chunks_for_bytes(megabyte, params), row.expected[j])
          << gf::field_name(row.field) << " m=2^" << (13 + j);
    }
  }
}

TEST(Params, PaperDefaults) {
  // Section III-C: "our example cases in this paper, where k = 8,
  // m = 32768 and q = 2^32".
  const CodingParams p = CodingParams::paper_defaults();
  EXPECT_EQ(p.field, gf::FieldId::gf2_32);
  EXPECT_EQ(p.m, 32768u);
  EXPECT_EQ(chunks_for_bytes(1u << 20, p), 8u);
}

TEST(Params, MessageBytes) {
  EXPECT_EQ((CodingParams{gf::FieldId::gf2_4, 1024}).message_bytes(), 512u);
  EXPECT_EQ((CodingParams{gf::FieldId::gf2_8, 1024}).message_bytes(), 1024u);
  EXPECT_EQ((CodingParams{gf::FieldId::gf2_16, 1024}).message_bytes(), 2048u);
  EXPECT_EQ((CodingParams{gf::FieldId::gf2_32, 1024}).message_bytes(), 4096u);
}

TEST(Params, ChunksRoundUpForUnevenSizes) {
  const CodingParams p{gf::FieldId::gf2_8, 1024};  // 1 KiB per chunk
  EXPECT_EQ(chunks_for_bytes(1, p), 1u);
  EXPECT_EQ(chunks_for_bytes(1024, p), 1u);
  EXPECT_EQ(chunks_for_bytes(1025, p), 2u);
  EXPECT_EQ(chunks_for_bytes(10 * 1024, p), 10u);
}

TEST(Params, DigestOverheadMatchesPaperClaim) {
  // "this corresponds to 128 hash bytes per megabyte" for k = 8: the k
  // per-message MD5 digests are 8 * 16 = 128 bytes.
  const CodingParams p = CodingParams::paper_defaults();
  const std::size_t k = chunks_for_bytes(1u << 20, p);
  EXPECT_EQ(k * 16, 128u);
}

}  // namespace
}  // namespace fairshare::coding
