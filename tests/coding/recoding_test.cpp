// Peer-side recoding (the rejected design alternative) and its decode path.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "coding/recoding.hpp"
#include "sim/rng.hpp"

namespace fairshare::coding {
namespace {

SecretKey secret(std::uint8_t tag) {
  SecretKey s{};
  s[0] = tag;
  return s;
}

std::vector<std::byte> random_data(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

const CodingParams kParams{gf::FieldId::gf2_32, 64};

TEST(Recoding, RecodedPacketsDecodeTheFile) {
  const auto data = random_data(4000, 1);
  FileEncoder encoder(secret(1), 1, data, kParams);
  const std::size_t k = encoder.k();
  const auto pool = encoder.generate(k);

  // A peer holding the whole pool emits recoded packets; the user decodes
  // from recoded packets alone.
  Recoder recoder(kParams);
  sim::SplitMix64 rng(2);
  FileDecoder decoder(secret(1), encoder.info(), /*require_digests=*/false);
  std::size_t sent = 0;
  while (!decoder.complete() && sent < 3 * k) {
    const RecodedMessage packet = recoder.recode(pool, rng);
    decoder.add_recoded(packet);
    ++sent;
  }
  ASSERT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.reconstruct(), data);
  EXPECT_LE(sent, k + 2);  // essentially every packet innovative
}

TEST(Recoding, EffectiveRowMatchesManualExpansion) {
  const auto data = random_data(2000, 3);
  FileEncoder encoder(secret(1), 1, data, kParams);
  const auto pool = encoder.generate(3);
  const CoefficientGenerator gen(secret(1), 1, kParams, encoder.k());
  const auto& f = gf::field_view(kParams.field);

  Recoder recoder(kParams);
  sim::SplitMix64 rng(4);
  const RecodedMessage packet = recoder.recode(pool, rng);
  const auto row = effective_row(gen, packet, kParams);

  std::vector<std::byte> expected(f.row_bytes(encoder.k()), std::byte{0});
  for (const auto& [mid, alpha] : packet.combination)
    f.axpy(expected.data(), gen.row(mid).data(), alpha, encoder.k());
  EXPECT_EQ(row, expected);
}

TEST(Recoding, MixedVerbatimAndRecodedDecode) {
  const auto data = random_data(4000, 5);
  FileEncoder encoder(secret(1), 1, data, kParams);
  const std::size_t k = encoder.k();
  const auto pool = encoder.generate(k);

  Recoder recoder(kParams);
  sim::SplitMix64 rng(6);
  FileDecoder decoder(secret(1), encoder.info());
  // Half verbatim (digest-checked), half recoded.
  for (std::size_t i = 0; i < k / 2; ++i)
    EXPECT_EQ(decoder.add(pool[i]), AddResult::accepted);
  while (!decoder.complete())
    decoder.add_recoded(recoder.recode(pool, rng));
  EXPECT_EQ(decoder.reconstruct(), data);
}

TEST(Recoding, DefeatsCouponCollectorOnOverlappingStores) {
  // Two peers each hold the SAME k'-subset of the pool.  Verbatim
  // forwarding can never exceed rank k'; recoding cannot either (same
  // span!) — but with peers holding random overlapping subsets the span
  // union matters.  Model: 4 peers, each storing a random k/2 subset.
  const auto data = random_data(8000, 7);
  FileEncoder encoder(secret(1), 1, data, kParams);
  const std::size_t k = encoder.k();  // 32 chunks
  const auto pool = encoder.generate(k);

  // Build overlapping k/2-sized stores whose union covers the pool: deal
  // each message to one peer round-robin, then pad every store with random
  // other messages (the overlap that causes verbatim duplicates).
  sim::SplitMix64 rng(8);
  std::vector<std::vector<EncodedMessage>> stores(4);
  std::vector<std::set<std::size_t>> held(4);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    stores[i % 4].push_back(pool[i]);
    held[i % 4].insert(i);
  }
  for (std::size_t p = 0; p < 4; ++p) {
    while (stores[p].size() < k / 2) {
      const std::size_t pick = rng.next_below(pool.size());
      if (held[p].insert(pick).second) stores[p].push_back(pool[pick]);
    }
  }

  // Verbatim round-robin: duplicates across peers waste transmissions.
  FileDecoder verbatim(secret(1), encoder.info());
  std::size_t verbatim_sent = 0;
  std::vector<std::size_t> cursor(4, 0);
  while (!verbatim.complete() && verbatim_sent < 200) {
    for (std::size_t p = 0; p < 4 && !verbatim.complete(); ++p) {
      if (cursor[p] >= stores[p].size()) continue;
      verbatim.add(stores[p][cursor[p]++]);
      ++verbatim_sent;
    }
    bool exhausted = true;
    for (std::size_t p = 0; p < 4; ++p)
      if (cursor[p] < stores[p].size()) exhausted = false;
    if (exhausted) break;
  }

  // Recoding round-robin: every packet spans the peer's whole store.
  Recoder recoder(kParams);
  FileDecoder recoded(secret(1), encoder.info(), /*require_digests=*/false);
  std::size_t recoded_sent = 0;
  while (!recoded.complete() && recoded_sent < 200) {
    for (std::size_t p = 0; p < 4 && !recoded.complete(); ++p) {
      recoded.add_recoded(recoder.recode(stores[p], rng));
      ++recoded_sent;
    }
  }

  ASSERT_TRUE(recoded.complete());
  EXPECT_EQ(recoded.reconstruct(), data);
  if (verbatim.complete()) {
    // If verbatim got lucky with coverage it still used more sends.
    EXPECT_GE(verbatim_sent, recoded_sent);
  } else {
    // Typical outcome: duplicates starved the verbatim decoder.
    EXPECT_LT(verbatim.rank(), k);
  }
}

TEST(Recoding, WrongFileAndBadSizeRejected) {
  const auto data = random_data(2000, 9);
  FileEncoder encoder(secret(1), 1, data, kParams);
  const auto pool = encoder.generate(encoder.k());
  Recoder recoder(kParams);
  sim::SplitMix64 rng(10);
  FileDecoder decoder(secret(1), encoder.info(), false);
  auto packet = recoder.recode(pool, rng);
  packet.file_id = 999;
  EXPECT_EQ(decoder.add_recoded(packet), AddResult::wrong_file);
  packet = recoder.recode(pool, rng);
  packet.payload.pop_back();
  EXPECT_EQ(decoder.add_recoded(packet), AddResult::bad_size);
}

TEST(Recoding, TamperedRecodedPacketCorruptsSilently) {
  // The security cost of recoding: a flipped byte is NOT caught by any
  // per-message digest; only the content digest catches it at the end.
  const auto data = random_data(4000, 11);
  FileEncoder encoder(secret(1), 1, data, kParams);
  const auto pool = encoder.generate(encoder.k());
  Recoder recoder(kParams);
  sim::SplitMix64 rng(12);
  FileDecoder decoder(secret(1), encoder.info(), false);
  auto first = recoder.recode(pool, rng);
  first.payload[0] ^= std::byte{0x80};          // malicious peer
  EXPECT_EQ(decoder.add_recoded(first), AddResult::accepted);  // undetected!
  while (!decoder.complete())
    decoder.add_recoded(recoder.recode(pool, rng));
  const auto out = decoder.reconstruct();
  EXPECT_NE(out, data);  // corruption went through
  EXPECT_NE(crypto::Md5::hash(std::span<const std::byte>(out)),
            encoder.info().content_digest);  // ...but content digest catches it
}

}  // namespace
}  // namespace fairshare::coding
