// The paper-literal batch decoder (invert the k x k sub-matrix), checked
// against the progressive decoder.
#include <gtest/gtest.h>

#include <vector>

#include "coding/batch_decoder.hpp"
#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "sim/rng.hpp"

namespace fairshare::coding {
namespace {

SecretKey secret(std::uint8_t tag) {
  SecretKey s{};
  s[0] = tag;
  return s;
}

std::vector<std::byte> random_data(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

class BatchDecoderTest : public ::testing::TestWithParam<gf::FieldId> {
 protected:
  CodingParams params() const { return CodingParams{GetParam(), 64}; }
};

TEST_P(BatchDecoderTest, DecodesExactlyLikeProgressive) {
  const auto data = random_data(3000, 1);
  FileEncoder encoder(secret(1), 1, data, params());
  const auto messages = encoder.generate(encoder.k());

  BatchDecoder batch(secret(1), encoder.info());
  FileDecoder progressive(secret(1), encoder.info());
  for (const auto& m : messages) {
    EXPECT_EQ(batch.add(m), AddResult::accepted);
    progressive.add(m);
  }
  ASSERT_TRUE(batch.ready());
  const auto batch_out = batch.decode();
  ASSERT_TRUE(batch_out.has_value());
  ASSERT_TRUE(progressive.complete());
  EXPECT_EQ(*batch_out, progressive.reconstruct());
  EXPECT_EQ(*batch_out, data);
}

TEST_P(BatchDecoderTest, NotReadyBeforeKMessages) {
  const auto data = random_data(3000, 2);
  FileEncoder encoder(secret(1), 1, data, params());
  const auto messages = encoder.generate(encoder.k());
  BatchDecoder batch(secret(1), encoder.info());
  for (std::size_t i = 0; i + 1 < messages.size(); ++i)
    batch.add(messages[i]);
  EXPECT_FALSE(batch.ready());
  EXPECT_FALSE(batch.decode().has_value());
}

INSTANTIATE_TEST_SUITE_P(Fields, BatchDecoderTest,
                         ::testing::Values(gf::FieldId::gf2_8,
                                           gf::FieldId::gf2_16,
                                           gf::FieldId::gf2_32));

TEST(BatchDecoder, RejectsTamperAndDuplicates) {
  const CodingParams params{gf::FieldId::gf2_32, 64};
  const auto data = random_data(2000, 3);
  FileEncoder encoder(secret(1), 1, data, params);
  auto messages = encoder.generate(encoder.k());
  BatchDecoder batch(secret(1), encoder.info());
  EXPECT_EQ(batch.add(messages[0]), AddResult::accepted);
  EXPECT_EQ(batch.add(messages[0]), AddResult::non_innovative);
  auto bad = messages[1];
  bad.payload[0] ^= std::byte{1};
  EXPECT_EQ(batch.add(bad), AddResult::bad_digest);
  bad = messages[1];
  bad.file_id = 999;
  EXPECT_EQ(batch.add(bad), AddResult::wrong_file);
}

TEST(BatchDecoder, SingularBufferRecoversWithFreshMessage) {
  // Force a dependent buffer over GF(2^4) by feeding messages from two
  // different batches until a singular draw appears; decode() must drop a
  // message and succeed after more arrive.  (Over GF(2^4) a random k x k
  // matrix is singular a few percent of the time, so we manufacture
  // dependence instead: feed the SAME batch but replace one message with a
  // cross-batch one whose row may collide.)  This test mostly exercises
  // the retry path compiles and behaves; the common case is covered above.
  const CodingParams params{gf::FieldId::gf2_4, 64};
  const auto data = random_data(500, 4);
  FileEncoder encoder(secret(1), 1, data, params);
  const std::size_t k = encoder.k();
  const auto pool = encoder.generate(4 * k);
  FileInfo info = encoder.info();

  BatchDecoder batch(secret(1), info);
  std::size_t fed = 0;
  for (const auto& m : pool) {
    if (batch.add(m) == AddResult::accepted) ++fed;
    if (batch.ready()) {
      const auto out = batch.decode();
      if (out) {
        EXPECT_EQ(*out, data);
        return;
      }
    }
  }
  FAIL() << "never decoded from " << fed << " buffered messages";
}

}  // namespace
}  // namespace fairshare::coding
