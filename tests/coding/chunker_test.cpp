// 1 MB chunked ("streaming") encoding of Section III-D.
#include <gtest/gtest.h>

#include <vector>

#include "coding/chunker.hpp"
#include "sim/rng.hpp"

namespace fairshare::coding {
namespace {

SecretKey secret(std::uint8_t tag) {
  SecretKey s{};
  s[0] = tag;
  return s;
}

std::vector<std::byte> random_data(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

// Small units keep tests fast while exercising the multi-unit paths.
constexpr std::size_t kUnit = 4096;
const CodingParams kParams{gf::FieldId::gf2_32, 64};  // 256 B per message

TEST(Chunker, SplitsIntoExpectedUnits) {
  const auto data = random_data(3 * kUnit + 100, 1);
  ChunkedEncoder enc(secret(1), 1000, data, kParams, kUnit);
  EXPECT_EQ(enc.units(), 4u);
  const auto info = enc.info();
  EXPECT_EQ(info.units.size(), 4u);
  EXPECT_EQ(info.total_bytes, data.size());
  EXPECT_EQ(info.units[0].file_id, 1000u);
  EXPECT_EQ(info.units[3].file_id, 1003u);
  EXPECT_EQ(info.units[3].original_bytes, 100u);
}

TEST(Chunker, SingleUnitForSmallFile) {
  const auto data = random_data(100, 2);
  ChunkedEncoder enc(secret(1), 1, data, kParams, kUnit);
  EXPECT_EQ(enc.units(), 1u);
}

TEST(Chunker, FullRoundTrip) {
  const auto data = random_data(2 * kUnit + 77, 3);
  ChunkedEncoder enc(secret(7), 500, data, kParams, kUnit);
  // Generate k messages per unit up front.
  std::vector<EncodedMessage> messages;
  for (std::size_t u = 0; u < enc.units(); ++u) {
    auto batch = enc.unit(u).generate(enc.unit(u).k());
    messages.insert(messages.end(), batch.begin(), batch.end());
  }
  ChunkedDecoder dec(secret(7), enc.info());
  for (const auto& m : messages) dec.add(m);
  ASSERT_TRUE(dec.complete());
  EXPECT_EQ(dec.reconstruct(), data);
}

TEST(Chunker, StreamingCompletesUnitsIndependently) {
  const auto data = random_data(3 * kUnit, 4);
  ChunkedEncoder enc(secret(8), 2000, data, kParams, kUnit);
  // Generate every unit's messages up front so the metadata snapshot the
  // user carries (info() below) includes their digests.
  std::vector<std::vector<EncodedMessage>> unit_messages;
  for (std::size_t u = 0; u < enc.units(); ++u)
    unit_messages.push_back(enc.unit(u).generate(enc.unit(u).k()));
  ChunkedDecoder dec(secret(8), enc.info());

  // Complete unit 1 first: playback cannot start (unit 0 missing)...
  for (auto& m : unit_messages[1]) dec.add(m);
  EXPECT_TRUE(dec.unit_complete(1));
  EXPECT_FALSE(dec.unit_complete(0));
  EXPECT_EQ(dec.next_needed_unit(), 0u);
  EXPECT_FALSE(dec.complete());

  // ...then unit 0 arrives and the stream head advances past both.
  for (auto& m : unit_messages[0]) dec.add(m);
  EXPECT_EQ(dec.next_needed_unit(), 2u);

  // Unit 0's decoded bytes equal the file prefix (streaming playback).
  const auto head = dec.unit_data(0);
  EXPECT_TRUE(std::equal(head.begin(), head.end(), data.begin()));

  for (auto& m : unit_messages[2]) dec.add(m);
  EXPECT_TRUE(dec.complete());
  EXPECT_EQ(dec.reconstruct(), data);
}

TEST(Chunker, RoutesByFileIdAndRejectsForeign) {
  const auto data = random_data(kUnit + 1, 5);
  ChunkedEncoder enc(secret(9), 3000, data, kParams, kUnit);
  auto msg = enc.unit(0).generate(1)[0];
  ChunkedDecoder dec(secret(9), enc.info());
  EXPECT_EQ(dec.add(msg), AddResult::accepted);
  msg.file_id = 9999;
  EXPECT_EQ(dec.add(msg), AddResult::wrong_file);
}

TEST(Chunker, UnitsUseIndependentCoefficients) {
  // The same message id in different units must carry different rows
  // (file id feeds the PRNG seed).
  const auto data = random_data(2 * kUnit, 6);
  ChunkedEncoder enc(secret(10), 4000, data, kParams, kUnit);
  const auto m0 = enc.unit(0).generate(1)[0];
  const auto m1 = enc.unit(1).generate(1)[0];
  EXPECT_EQ(m0.message_id, m1.message_id);
  const CoefficientGenerator g0(secret(10), 4000, kParams,
                                enc.unit(0).k());
  const CoefficientGenerator g1(secret(10), 4001, kParams,
                                enc.unit(1).k());
  EXPECT_NE(g0.row(m0.message_id), g1.row(m1.message_id));
}

}  // namespace
}  // namespace fairshare::coding
