// Merkle authentication layered under the codec (metadata-light mode).
#include <gtest/gtest.h>

#include <vector>

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "coding/merkle_auth.hpp"
#include "sim/rng.hpp"

namespace fairshare::coding {
namespace {

SecretKey secret(std::uint8_t tag) {
  SecretKey s{};
  s[0] = tag;
  return s;
}

std::vector<std::byte> random_data(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

const CodingParams kParams{gf::FieldId::gf2_32, 64};

struct Batch {
  std::vector<std::byte> data;
  FileEncoder encoder;
  std::vector<EncodedMessage> messages;

  explicit Batch(std::uint64_t seed, std::size_t messages_wanted = 0)
      : data(random_data(4000, seed)),
        encoder(secret(1), 1, data, kParams),
        messages(encoder.generate(messages_wanted ? messages_wanted
                                                  : encoder.k())) {}
};

TEST(MerkleAuth, AttachedProofsVerify) {
  Batch b(1, 20);
  MerkleAuthenticator auth(b.messages);
  MerkleVerifier verifier(auth.root(), auth.leaf_count());
  const auto authenticated = auth.attach_all(b.messages);
  ASSERT_EQ(authenticated.size(), 20u);
  for (const auto& am : authenticated) EXPECT_TRUE(verifier.verify(am));
}

TEST(MerkleAuth, TamperedPayloadRejected) {
  Batch b(2);
  MerkleAuthenticator auth(b.messages);
  MerkleVerifier verifier(auth.root(), auth.leaf_count());
  auto am = auth.attach(b.messages[0], 0);
  am.message.payload[7] ^= std::byte{1};
  EXPECT_FALSE(verifier.verify(am));
}

TEST(MerkleAuth, TamperedMessageIdRejected) {
  Batch b(3);
  MerkleAuthenticator auth(b.messages);
  MerkleVerifier verifier(auth.root(), auth.leaf_count());
  auto am = auth.attach(b.messages[0], 0);
  am.message.message_id += 1;
  EXPECT_FALSE(verifier.verify(am));
}

TEST(MerkleAuth, SwappedIndexRejected) {
  Batch b(4);
  MerkleAuthenticator auth(b.messages);
  MerkleVerifier verifier(auth.root(), auth.leaf_count());
  auto am = auth.attach(b.messages[0], 0);
  am.leaf_index = 1;  // claim a different position
  EXPECT_FALSE(verifier.verify(am));
}

TEST(MerkleAuth, ForeignRootRejected) {
  Batch b1(5), b2(6);
  MerkleAuthenticator auth1(b1.messages);
  MerkleAuthenticator auth2(b2.messages);
  MerkleVerifier verifier(auth2.root(), auth2.leaf_count());
  EXPECT_FALSE(verifier.verify(auth1.attach(b1.messages[0], 0)));
}

TEST(MerkleAuth, DecodesWithoutDigestTable) {
  // The full metadata-light path: user carries only root + leaf count;
  // every message is Merkle-verified, then fed to a digestless decoder.
  Batch b(7);
  MerkleAuthenticator auth(b.messages);
  MerkleVerifier verifier(auth.root(), auth.leaf_count());

  FileInfo info = b.encoder.info();
  info.message_digests.clear();  // nothing carried per message
  FileDecoder decoder(secret(1), info, /*require_digests=*/false);

  for (const auto& am : auth.attach_all(b.messages)) {
    ASSERT_TRUE(verifier.verify(am));
    decoder.add(am.message);
  }
  ASSERT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.reconstruct(), b.data);
}

TEST(MerkleAuth, TampererCannotSneakPastVerifierIntoDecoder) {
  Batch b(8);
  MerkleAuthenticator auth(b.messages);
  MerkleVerifier verifier(auth.root(), auth.leaf_count());
  FileInfo info = b.encoder.info();
  info.message_digests.clear();
  FileDecoder decoder(secret(1), info, /*require_digests=*/false);

  auto authenticated = auth.attach_all(b.messages);
  authenticated[0].message.payload[0] ^= std::byte{0xFF};  // corrupt one
  std::size_t rejected = 0;
  for (const auto& am : authenticated) {
    if (!verifier.verify(am)) {
      ++rejected;
      continue;
    }
    decoder.add(am.message);
  }
  EXPECT_EQ(rejected, 1u);
  EXPECT_FALSE(decoder.complete());  // short one message, but never corrupt
}

TEST(MerkleAuth, MetadataFootprintBeatsDigestTable) {
  // The future-work goal quantified: user-carried bytes shrink from
  // 16 * n to 36 while per-message wire overhead stays logarithmic.
  Batch b(9, 64);
  MerkleAuthenticator auth(b.messages);
  const std::size_t digest_table_bytes = b.messages.size() * 16;
  const std::size_t merkle_carried_bytes = 32 + 4;  // root + leaf count
  EXPECT_LT(merkle_carried_bytes, digest_table_bytes);

  const auto am = auth.attach(b.messages[10], 10);
  EXPECT_EQ(am.proof.size(), 6u);  // log2(64)
  EXPECT_EQ(am.auth_overhead_bytes(), 4u + 6u * 32u);
}

}  // namespace
}  // namespace fairshare::coding
