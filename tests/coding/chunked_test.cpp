// Overlapping-class codec (coding/chunked.hpp): class-map geometry and
// schedule invariants, bit-exact agreement with the dense codec, the
// donation cascade under in-order / shuffled / recoded delivery, batch
// parallelism parity, and the registry wiring for the chunked metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "coding/chunked.hpp"
#include "coding/codec.hpp"
#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "util/thread_pool.hpp"

namespace fairshare::coding {
namespace {

SecretKey secret(std::uint8_t tag) {
  SecretKey s{};
  s[0] = tag;
  return s;
}

std::vector<std::byte> random_data(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

ChunkedSchedule schedule(std::uint32_t class_size, std::uint32_t overlap,
                         std::uint64_t seed = 7) {
  ChunkedSchedule s;
  s.class_size = class_size;
  s.overlap = overlap;
  s.seed = seed;
  return s;
}

// ------------------------------------------------------------- geometry

void check_map_invariants(std::size_t k, const ChunkedSchedule& s) {
  SCOPED_TRACE(::testing::Message() << "k=" << k << " L=" << s.class_size
                                    << " v=" << s.overlap);
  const chunked::ClassMap map(k, s);
  const std::size_t n = map.classes();
  ASSERT_GE(n, 1u);

  // Window geometry: widths are class_size except the last, which stays
  // strictly wider than the overlap (otherwise it would be a subset of its
  // neighbour); windows tile [0, k) exactly.
  for (std::size_t c = 0; c + 1 < n; ++c)
    EXPECT_EQ(map.width(c), std::min<std::size_t>(s.class_size, k));
  EXPECT_GT(map.width(n - 1), n == 1 ? 0u : s.overlap);
  EXPECT_LE(map.width(n - 1), s.class_size);
  EXPECT_EQ(map.start(n - 1) + map.width(n - 1), k);
  std::size_t widest = 0;
  for (std::size_t c = 0; c < n; ++c) widest = std::max(widest, map.width(c));
  EXPECT_EQ(map.max_width(), widest);

  // Every chunk is covered, and classes_containing agrees with contains()
  // and is sorted ascending.
  for (std::size_t j = 0; j < k; ++j) {
    const auto owners = map.classes_containing(j);
    ASSERT_GE(owners.size(), 1u) << "chunk " << j << " uncovered";
    EXPECT_TRUE(std::is_sorted(owners.begin(), owners.end()));
    for (std::size_t c = 0; c < n; ++c) {
      const bool listed =
          std::find(owners.begin(), owners.end(), c) != owners.end();
      EXPECT_EQ(listed, map.contains(c, j)) << "chunk " << j << " class " << c;
    }
  }

  // Quota schedule: over one period of k ids, class c appears exactly
  // q_c = w_c - (c > 0 ? overlap : 0) times, and the quotas sum to k — the
  // identity that makes in-order delivery land ~zero overhead.
  std::vector<std::size_t> visits(n, 0);
  for (std::size_t id = 0; id < k; ++id) {
    const std::size_t c = map.class_of(id);
    ASSERT_LT(c, n);
    ++visits[c];
  }
  std::size_t total = 0;
  for (std::size_t c = 0; c < n; ++c) {
    const std::size_t quota = map.width(c) - (c > 0 ? s.overlap : 0);
    EXPECT_EQ(visits[c], quota) << "class " << c;
    total += visits[c];
  }
  EXPECT_EQ(total, k);

  // The schedule is periodic in k, so recoders agree on classes for ids
  // far past the first period.
  for (std::uint64_t id = 0; id < std::min<std::size_t>(k, 64); ++id)
    EXPECT_EQ(map.class_of(id), map.class_of(id + 3 * k));
}

TEST(ClassMap, InvariantsAcrossGeometries) {
  // k < L, k == L, k % stride != 0, short last chunk, zero overlap,
  // overlap wider than the stride (chunks owned by 3+ classes).
  check_map_invariants(5, schedule(16, 4));
  check_map_invariants(16, schedule(16, 4));
  check_map_invariants(100, schedule(16, 4));
  check_map_invariants(97, schedule(16, 4));
  check_map_invariants(100, schedule(16, 0));
  check_map_invariants(60, schedule(16, 12));
  check_map_invariants(101, schedule(7, 3, 99));
  check_map_invariants(64, schedule(64, 8));  // defaults, single class
}

TEST(ClassMap, SingleClassWhenFileIsSmall) {
  const chunked::ClassMap map(10, schedule(16, 4));
  EXPECT_EQ(map.classes(), 1u);
  EXPECT_EQ(map.width(0), 10u);
  EXPECT_EQ(map.max_width(), 10u);
  for (std::uint64_t id = 0; id < 40; ++id) EXPECT_EQ(map.class_of(id), 0u);
  for (std::size_t j = 0; j < 10; ++j)
    EXPECT_EQ(map.classes_containing(j), std::vector<std::size_t>{0});
}

TEST(ClassMap, SeedChangesInterleavingNotQuotas) {
  const chunked::ClassMap a(100, schedule(16, 4, 1));
  const chunked::ClassMap b(100, schedule(16, 4, 2));
  std::map<std::size_t, std::size_t> visits_a, visits_b;
  bool any_difference = false;
  for (std::uint64_t id = 0; id < 100; ++id) {
    ++visits_a[a.class_of(id)];
    ++visits_b[b.class_of(id)];
    any_difference = any_difference || a.class_of(id) != b.class_of(id);
  }
  EXPECT_EQ(visits_a, visits_b);  // quotas are seed-independent
  EXPECT_TRUE(any_difference);    // the interleaving is not
}

// ------------------------------------------------------------- decoding

TEST(Chunked, InOrderExactlyKMessagesDecode) {
  // The quota schedule's contract: k in-order messages complete the file
  // with zero reception overhead — class 0 fills from its quota, and every
  // later class fills from its quota plus the overlap donation cascade.
  // Fully deterministic (ChaCha coefficients + seeded schedule), so this
  // strict form cannot flake.
  const CodingParams params{gf::FieldId::gf2_32, 64};  // 256 B chunks
  const auto data = random_data(12700, 3);             // k = 50, padded tail
  chunked::Encoder encoder(secret(3), 500, data, params, schedule(16, 4));
  const std::size_t k = encoder.k();
  ASSERT_EQ(k, 50u);
  ASSERT_GT(encoder.class_map().classes(), 2u);

  const auto messages = encoder.generate(k);  // also publishes digests
  chunked::Decoder decoder(secret(3), encoder.info());
  std::size_t fed = 0;
  for (const auto& msg : messages) {
    ASSERT_FALSE(decoder.complete());
    EXPECT_EQ(decoder.add(msg), AddResult::accepted) << "message " << fed;
    ++fed;
  }
  ASSERT_TRUE(decoder.complete());
  EXPECT_EQ(fed, k);
  EXPECT_EQ(decoder.accepted(), k);
  EXPECT_EQ(decoder.classes_complete(), decoder.class_map().classes());
  EXPECT_EQ(decoder.reconstruct(), data);

  // rank() counts every class's full width: k plus one overlap per seam.
  std::size_t width_sum = 0;
  for (std::size_t c = 0; c < decoder.class_map().classes(); ++c)
    width_sum += decoder.class_map().width(c);
  EXPECT_EQ(decoder.rank(), width_sum);
}

TEST(Chunked, MatchesDenseDecoderBitExactly) {
  // Differential test: both codecs on identical payload bytes must agree
  // with each other and the source exactly.
  const CodingParams params{gf::FieldId::gf2_8, 64};
  const auto data = random_data(6350, 4);  // k = 100
  const auto key = secret(4);

  FileEncoder dense_enc(key, 77, data, params);
  const auto dense_messages = dense_enc.generate(dense_enc.k());
  FileDecoder dense_dec(key, dense_enc.info());
  for (const auto& msg : dense_messages) dense_dec.add(msg);
  ASSERT_TRUE(dense_dec.complete());

  chunked::Encoder chunked_enc(key, 77, data, params, schedule(16, 4));
  ASSERT_EQ(chunked_enc.k(), dense_enc.k());
  const auto chunked_messages = chunked_enc.generate(2 * chunked_enc.k());
  chunked::Decoder chunked_dec(key, chunked_enc.info());
  for (const auto& msg : chunked_messages) {
    if (chunked_dec.complete()) break;
    chunked_dec.add(msg);
  }
  ASSERT_TRUE(chunked_dec.complete());

  const auto via_dense = dense_dec.reconstruct();
  const auto via_chunked = chunked_dec.reconstruct();
  EXPECT_EQ(via_dense, data);
  EXPECT_EQ(via_chunked, data);
  EXPECT_EQ(via_chunked, via_dense);
}

struct GeometryCase {
  gf::FieldId field;
  std::size_t m;
  std::size_t data_bytes;
  std::uint32_t class_size;
  std::uint32_t overlap;
};

class ChunkedGeometryTest : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(ChunkedGeometryTest, ShuffledDeliveryDecodes) {
  const auto& c = GetParam();
  const CodingParams params{c.field, c.m};
  const auto data = random_data(c.data_bytes, 5);
  chunked::Encoder encoder(secret(5), 42, data, params,
                           schedule(c.class_size, c.overlap));

  // Three periods shuffled: every class sees enough rows regardless of
  // where the cut lands, and the cascade handles completion in any order.
  auto messages = encoder.generate(3 * encoder.k());
  sim::SplitMix64 rng(0xABCDEF);
  for (std::size_t i = messages.size(); i > 1; --i)
    std::swap(messages[i - 1], messages[rng.next_below(i)]);

  chunked::Decoder decoder(secret(5), encoder.info());
  std::size_t fed = 0;
  for (const auto& msg : messages) {
    if (decoder.complete()) break;
    decoder.add(msg);
    ++fed;
  }
  ASSERT_TRUE(decoder.complete()) << "after " << fed << " of "
                                  << messages.size();
  EXPECT_EQ(decoder.reconstruct(), data);
  EXPECT_GE(fed, encoder.k());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChunkedGeometryTest,
    ::testing::Values(
        // k = 100 with a short (width-4+) last class.
        GeometryCase{gf::FieldId::gf2_8, 64, 6400, 16, 4},
        // k = 50 not divisible by the stride, padded final chunk.
        GeometryCase{gf::FieldId::gf2_32, 64, 12700, 16, 4},
        // Disjoint classes: no donations, quotas alone must suffice.
        GeometryCase{gf::FieldId::gf2_16, 64, 12800, 20, 0},
        // Overlap wider than the stride: chunks shared by 4 classes.
        GeometryCase{gf::FieldId::gf2_8, 32, 1900, 16, 12},
        // Single class: degenerates to the dense decoder's behaviour.
        GeometryCase{gf::FieldId::gf2_8, 64, 640, 16, 4},
        // Nibble-packed field, tiny classes.
        GeometryCase{gf::FieldId::gf2_4, 128, 4000, 8, 2}));

// ------------------------------------------------------------ recoding

TEST(Chunked, RecodedClassLocalPacketsDecode) {
  const CodingParams params{gf::FieldId::gf2_32, 64};
  const auto data = random_data(12800, 6);  // k = 50
  chunked::Encoder encoder(secret(6), 43, data, params, schedule(16, 4));
  const auto pool = encoder.generate(2 * encoder.k());
  const chunked::ClassMap& map = encoder.class_map();

  // A peer recodes inside each class; the decoder expands the packets
  // against that class's solver and the cascade finishes the file.
  chunked::Decoder decoder(secret(6), encoder.info());
  sim::SplitMix64 rng(99);
  std::size_t attempts = 0;
  while (!decoder.complete()) {
    ASSERT_LT(attempts, 40 * map.classes()) << "recoded decode stalled";
    const std::size_t cls = attempts % map.classes();
    ++attempts;
    const auto packet =
        chunked::recode_class_local(map, cls, pool, params, rng);
    decoder.add_recoded(packet);
  }
  EXPECT_EQ(decoder.reconstruct(), data);
  EXPECT_EQ(decoder.rejected_auth(), 0u);
}

TEST(Chunked, CrossClassRecodedPacketRejected) {
  const CodingParams params{gf::FieldId::gf2_32, 64};
  const auto data = random_data(12800, 7);
  chunked::Encoder encoder(secret(7), 44, data, params, schedule(16, 4));
  const auto pool = encoder.generate(encoder.k());
  const chunked::ClassMap& map = encoder.class_map();
  ASSERT_GE(map.classes(), 2u);

  // Find one message of class 0 and one of another class and combine them:
  // under the chunked protocol that packet is malformed.
  RecodedMessage cross;
  cross.file_id = 44;
  for (const auto& msg : pool) {
    const std::size_t cls = map.class_of(msg.message_id);
    if ((cls == 0 && cross.combination.empty()) ||
        (cls != 0 && cross.combination.size() == 1)) {
      cross.combination.emplace_back(msg.message_id, 1);
      if (cross.payload.empty())
        cross.payload = msg.payload;  // payload content is irrelevant here
    }
    if (cross.combination.size() == 2) break;
  }
  ASSERT_EQ(cross.combination.size(), 2u);

  chunked::Decoder decoder(secret(7), encoder.info());
  EXPECT_EQ(decoder.add_recoded(cross), AddResult::bad_digest);
  RecodedMessage empty;
  empty.file_id = 44;
  empty.payload = cross.payload;
  EXPECT_EQ(decoder.add_recoded(empty), AddResult::bad_digest);
  EXPECT_EQ(decoder.rejected_auth(), 2u);
  EXPECT_EQ(decoder.accepted(), 0u);
}

// -------------------------------------------------------- authentication

TEST(Chunked, TamperedAndForeignMessagesRejected) {
  const CodingParams params{gf::FieldId::gf2_8, 64};
  const auto data = random_data(3200, 8);  // k = 50
  chunked::Encoder encoder(secret(8), 45, data, params, schedule(16, 4));
  auto messages = encoder.generate(encoder.k());
  chunked::Decoder decoder(secret(8), encoder.info());

  auto tampered = messages[0];
  tampered.payload[5] ^= std::byte{0x40};
  EXPECT_EQ(decoder.add(tampered), AddResult::bad_digest);

  auto unknown = messages[1];
  unknown.message_id += 1000 * encoder.k();  // owner never published a digest
  EXPECT_EQ(decoder.add(unknown), AddResult::bad_digest);

  auto foreign = messages[2];
  foreign.file_id = 999;
  EXPECT_EQ(decoder.add(foreign), AddResult::wrong_file);

  auto short_payload = messages[3];
  short_payload.payload.resize(short_payload.payload.size() - 1);
  EXPECT_EQ(decoder.add(short_payload), AddResult::bad_size);

  EXPECT_EQ(decoder.accepted(), 0u);
  EXPECT_EQ(decoder.rejected_auth(), 2u);

  // The untouched batch still decodes afterwards.
  for (const auto& msg : messages) decoder.add(msg);
  ASSERT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.reconstruct(), data);

  // Replays after completion are acknowledged as such.
  EXPECT_EQ(decoder.add(messages[0]), AddResult::already_complete);
}

// ------------------------------------------------------------- add_many

TEST(Chunked, AddManyMatchesPerMessageAddWithAndWithoutPool) {
  // Per-class payload work must clear linalg::kMinChunkSymbols for the
  // pooled branch to engage: m = 1024 symbols and ~26 messages per class
  // put every class well past the threshold.
  const CodingParams params{gf::FieldId::gf2_8, 1024};
  const auto data = random_data(64 * 1024, 9);  // k = 64
  chunked::Encoder encoder(secret(9), 46, data, params, schedule(16, 4));
  auto messages = encoder.generate(2 * encoder.k());
  sim::SplitMix64 rng(0x5EED);
  for (std::size_t i = messages.size(); i > 1; --i)
    std::swap(messages[i - 1], messages[rng.next_below(i)]);

  chunked::Decoder serial(secret(9), encoder.info());
  for (const auto& msg : messages) serial.add(msg);

  chunked::Decoder batch_inline(secret(9), encoder.info());
  batch_inline.add_many(messages, /*pool=*/nullptr);

  util::ThreadPool pool(4);
  chunked::Decoder batch_pooled(secret(9), encoder.info());
  batch_pooled.add_many(messages, &pool);

  // All three reach the same decode state and bytes.  Acceptance tallies
  // are allowed to differ between serial and batch: serial add() stops
  // counting once the file completes (already_complete), and add_many
  // defers the donation cascade until after its barrier, so coded rows a
  // donation would have made redundant are absorbed as innovative.
  for (const chunked::Decoder* d :
       {&serial, &batch_inline, &batch_pooled}) {
    ASSERT_TRUE(d->complete());
    EXPECT_EQ(d->rank(), serial.rank());
    EXPECT_GE(d->accepted(), encoder.k());
    EXPECT_LE(d->accepted() + d->non_innovative(), messages.size());
    EXPECT_EQ(d->reconstruct(), data);
  }
  // The pool changes scheduling, never results: pooled add_many must match
  // the inline pass counter for counter.
  EXPECT_EQ(batch_pooled.accepted(), batch_inline.accepted());
  EXPECT_EQ(batch_pooled.non_innovative(), batch_inline.non_innovative());
  EXPECT_EQ(batch_pooled.classes_complete(), batch_inline.classes_complete());
}

// ---------------------------------------------------------- codec switch

TEST(CodecDecoder, DispatchesOnFileInfoCodec) {
  const CodingParams params{gf::FieldId::gf2_8, 64};
  const auto data = random_data(3200, 10);
  const auto key = secret(10);

  FileEncoder dense_enc(key, 47, data, params);
  ASSERT_EQ(dense_enc.info().codec, CodecKind::dense);
  const auto dense_messages = dense_enc.generate(dense_enc.k());
  CodecDecoder dense_dec(key, dense_enc.info());
  EXPECT_EQ(dense_dec.kind(), CodecKind::dense);
  EXPECT_EQ(dense_dec.chunked_decoder(), nullptr);
  for (const auto& msg : dense_messages) dense_dec.add(msg);
  ASSERT_TRUE(dense_dec.complete());
  EXPECT_EQ(dense_dec.reconstruct(), data);

  chunked::Encoder chunked_enc(key, 47, data, params, schedule(16, 4));
  ASSERT_EQ(chunked_enc.info().codec, CodecKind::chunked);
  ASSERT_EQ(chunked_enc.info().schedule, schedule(16, 4));
  const auto chunked_messages = chunked_enc.generate(2 * chunked_enc.k());
  CodecDecoder chunked_dec(key, chunked_enc.info());
  EXPECT_EQ(chunked_dec.kind(), CodecKind::chunked);
  ASSERT_NE(chunked_dec.chunked_decoder(), nullptr);
  for (const auto& msg : chunked_messages) {
    if (chunked_dec.complete()) break;
    chunked_dec.add(msg);
  }
  ASSERT_TRUE(chunked_dec.complete());
  EXPECT_EQ(chunked_dec.reconstruct(), data);
  EXPECT_EQ(chunked_dec.k(), chunked_enc.k());
  EXPECT_GE(chunked_dec.accepted(), chunked_enc.k());
}

// -------------------------------------------------------------- metrics

TEST(Chunked, MetricsMirrorDecoderState) {
  const CodingParams params{gf::FieldId::gf2_32, 64};
  const auto data = random_data(12800, 11);  // k = 50
  chunked::Encoder encoder(secret(11), 48, data, params, schedule(16, 4));
  const chunked::ClassMap& map = encoder.class_map();

  const auto messages = encoder.generate(encoder.k());
  obs::MetricsRegistry registry;
  chunked::Decoder decoder(secret(11), encoder.info());
  decoder.enable_metrics(registry, /*user_id=*/9);
  for (const auto& msg : messages) decoder.add(msg);
  ASSERT_TRUE(decoder.complete());

  // Registry must equal the decoder's own report exactly: the total-rank
  // gauge (split from dense by the codec label), one gauge per class at
  // its full width, and the classes-complete counter.
  const auto snap = registry.snapshot();
  bool saw_rank = false;
  std::size_t class_gauges = 0;
  for (const auto& g : snap.gauges) {
    if (g.name == "fairshare_decoder_rank") {
      saw_rank = true;
      const obs::LabelList want = {{"codec", "chunked"},
                                   {"file", "48"},
                                   {"user", "9"}};
      EXPECT_EQ(g.labels, want);
      EXPECT_EQ(g.value, static_cast<double>(decoder.rank()));
    } else if (g.name == "fairshare_chunked_class_rank") {
      ASSERT_EQ(g.labels.size(), 3u);
      ASSERT_EQ(g.labels[0].first, "class");
      const std::size_t cls = std::stoul(g.labels[0].second);
      ASSERT_LT(cls, map.classes());
      EXPECT_EQ(g.value, static_cast<double>(map.width(cls)))
          << "class " << cls << " not at full rank";
      ++class_gauges;
    }
  }
  EXPECT_TRUE(saw_rank);
  EXPECT_EQ(class_gauges, map.classes());
  EXPECT_EQ(
      registry.counter_total("fairshare_chunked_classes_complete_total"),
      decoder.classes_complete());

  // The decode-time histogram carries the codec label and one sample per
  // timed elimination.  In this deterministic in-order run every
  // elimination was innovative — k coded rows plus the donated overlap
  // rows — so the sample count equals the total rank exactly.
  ASSERT_EQ(decoder.non_innovative(), 0u);
  bool saw_hist = false;
  for (const auto& h : snap.histograms) {
    if (h.name != "fairshare_decoder_eliminate_ns") continue;
    saw_hist = true;
    const obs::LabelList want = {{"codec", "chunked"},
                                 {"file", "48"},
                                 {"user", "9"}};
    EXPECT_EQ(h.labels, want);
    EXPECT_EQ(h.snap.count, decoder.rank());
  }
  EXPECT_TRUE(saw_hist);
}

}  // namespace
}  // namespace fairshare::coding
