// End-to-end encoder/decoder behavior: the heart of Section III.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "sim/rng.hpp"

namespace fairshare::coding {
namespace {

SecretKey secret(std::uint8_t tag) {
  SecretKey s{};
  s[0] = tag;
  return s;
}

std::vector<std::byte> random_data(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

struct CodecCase {
  gf::FieldId field;
  std::size_t m;
  std::size_t data_bytes;
};

class CodecTest : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecTest, ExactlyKMessagesSuffice) {
  const auto& c = GetParam();
  const CodingParams params{c.field, c.m};
  const auto data = random_data(c.data_bytes, 1);
  FileEncoder encoder(secret(1), 100, data, params);
  const std::size_t k = encoder.k();

  // The first k screened messages form a batch guaranteed invertible.
  const auto messages = encoder.generate(k);
  FileDecoder decoder(secret(1), encoder.info());
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(decoder.add(messages[i]), AddResult::accepted) << i;
  }
  ASSERT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.reconstruct(), data);
  EXPECT_EQ(decoder.accepted(), k);
}

TEST_P(CodecTest, CrossBatchMixDecodes) {
  const auto& c = GetParam();
  const CodingParams params{c.field, c.m};
  const auto data = random_data(c.data_bytes, 2);
  FileEncoder encoder(secret(2), 7, data, params);
  const std::size_t k = encoder.k();

  // Generate 3 batches and feed an interleaved subset; the decoder keeps
  // requesting until rank k (non-innovative rows are simply skipped).
  auto messages = encoder.generate(3 * k);
  std::reverse(messages.begin(), messages.end());
  FileDecoder decoder(secret(2), encoder.info());
  std::size_t fed = 0;
  for (const auto& msg : messages) {
    if (decoder.complete()) break;
    decoder.add(msg);
    ++fed;
  }
  ASSERT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.reconstruct(), data);
  EXPECT_GE(fed, k);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CodecTest,
    ::testing::Values(CodecCase{gf::FieldId::gf2_4, 256, 2000},
                      CodecCase{gf::FieldId::gf2_8, 128, 2000},
                      CodecCase{gf::FieldId::gf2_16, 64, 2000},
                      CodecCase{gf::FieldId::gf2_32, 32, 2000},
                      CodecCase{gf::FieldId::gf2_32, 64, 40000},
                      CodecCase{gf::FieldId::gf2_8, 64, 1}),
    [](const auto& info) {
      std::string name = "q";
      name += std::to_string(gf::field_bits(info.param.field));
      name += "m" + std::to_string(info.param.m);
      name += "b" + std::to_string(info.param.data_bytes);
      return name;
    });

TEST(Codec, WrongSecretProducesGarbage) {
  // Security (Section III-C): without the right secret the coefficient
  // rows are wrong and reconstruction does not match.
  const CodingParams params{gf::FieldId::gf2_32, 64};
  const auto data = random_data(3000, 3);
  FileEncoder encoder(secret(1), 1, data, params);
  const auto messages = encoder.generate(encoder.k());

  FileDecoder decoder(secret(99), encoder.info());  // wrong key
  for (const auto& m : messages) decoder.add(m);
  if (decoder.complete()) {
    EXPECT_NE(decoder.reconstruct(), data);
  }
}

TEST(Codec, TamperedPayloadRejectedByDigest) {
  const CodingParams params{gf::FieldId::gf2_32, 64};
  const auto data = random_data(2000, 4);
  FileEncoder encoder(secret(1), 1, data, params);
  auto messages = encoder.generate(encoder.k());

  messages[0].payload[3] ^= std::byte{0xFF};
  FileDecoder decoder(secret(1), encoder.info());
  EXPECT_EQ(decoder.add(messages[0]), AddResult::bad_digest);
  EXPECT_EQ(decoder.rejected_auth(), 1u);
  for (std::size_t i = 1; i < messages.size(); ++i) decoder.add(messages[i]);
  EXPECT_FALSE(decoder.complete());  // one message short
}

TEST(Codec, ForgedMessageIdRejected) {
  const CodingParams params{gf::FieldId::gf2_32, 64};
  const auto data = random_data(2000, 5);
  FileEncoder encoder(secret(1), 1, data, params);
  auto messages = encoder.generate(encoder.k());
  messages[0].message_id = 12345678;  // id never emitted by the encoder
  FileDecoder decoder(secret(1), encoder.info());
  EXPECT_EQ(decoder.add(messages[0]), AddResult::bad_digest);
}

TEST(Codec, UnknownIdsAcceptedWhenDigestsNotRequired) {
  // Experiment mode: user did not carry the digest table.
  const CodingParams params{gf::FieldId::gf2_32, 64};
  const auto data = random_data(2000, 6);
  FileEncoder encoder(secret(1), 1, data, params);
  const auto messages = encoder.generate(encoder.k());
  FileInfo info = encoder.info();
  info.message_digests.clear();
  FileDecoder decoder(secret(1), info, /*require_digests=*/false);
  for (const auto& m : messages) decoder.add(m);
  ASSERT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.reconstruct(), data);
}

TEST(Codec, WrongFileIdRejected) {
  const CodingParams params{gf::FieldId::gf2_32, 64};
  const auto data = random_data(1000, 7);
  FileEncoder enc_a(secret(1), 1, data, params);
  FileEncoder enc_b(secret(1), 2, data, params);
  const auto msg_b = enc_b.generate(1)[0];
  FileDecoder decoder(secret(1), enc_a.info());
  EXPECT_EQ(decoder.add(msg_b), AddResult::wrong_file);
}

TEST(Codec, WrongPayloadSizeRejected) {
  const CodingParams params{gf::FieldId::gf2_32, 64};
  const auto data = random_data(1000, 8);
  FileEncoder encoder(secret(1), 1, data, params);
  auto msg = encoder.generate(1)[0];
  msg.payload.resize(msg.payload.size() - 4);
  FileDecoder decoder(secret(1), encoder.info());
  EXPECT_EQ(decoder.add(msg), AddResult::bad_size);
}

TEST(Codec, DuplicateMessageNotInnovative) {
  const CodingParams params{gf::FieldId::gf2_32, 64};
  const auto data = random_data(2000, 9);
  FileEncoder encoder(secret(1), 1, data, params);
  const auto messages = encoder.generate(2);
  FileDecoder decoder(secret(1), encoder.info());
  EXPECT_EQ(decoder.add(messages[0]), AddResult::accepted);
  EXPECT_EQ(decoder.add(messages[0]), AddResult::non_innovative);
  EXPECT_EQ(decoder.non_innovative(), 1u);
}

TEST(Codec, MessagesAfterCompletionIgnored) {
  const CodingParams params{gf::FieldId::gf2_32, 128};
  const auto data = random_data(600, 10);
  FileEncoder encoder(secret(1), 1, data, params);
  const std::size_t k = encoder.k();
  const auto messages = encoder.generate(k + 1);
  FileDecoder decoder(secret(1), encoder.info());
  for (std::size_t i = 0; i < k; ++i) decoder.add(messages[i]);
  ASSERT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.add(messages[k]), AddResult::already_complete);
}

TEST(Codec, EncoderScreeningRejectsFewIds) {
  // Skip probability per id is ~1/q; over GF(2^32) screening should
  // essentially never skip.
  const CodingParams params{gf::FieldId::gf2_32, 32};
  const auto data = random_data(4000, 11);
  FileEncoder encoder(secret(1), 1, data, params);
  const std::size_t want = 5 * encoder.k();
  encoder.generate(want);
  EXPECT_EQ(encoder.ids_examined(), want);
  EXPECT_EQ(encoder.messages_generated(), want);
}

TEST(Codec, Gf16ScreeningStillProducesDecodableBatches) {
  // Over GF(2^4) dependent rows genuinely occur; screening must skip them
  // and every batch must still decode with exactly k messages.
  const CodingParams params{gf::FieldId::gf2_4, 64};
  const auto data = random_data(500, 12);
  FileEncoder encoder(secret(1), 1, data, params);
  const std::size_t k = encoder.k();
  for (int batch = 0; batch < 4; ++batch) {
    const auto messages = encoder.generate(k);
    FileDecoder decoder(secret(1), encoder.info());
    for (const auto& m : messages)
      EXPECT_EQ(decoder.add(m), AddResult::accepted);
    ASSERT_TRUE(decoder.complete()) << "batch " << batch;
    EXPECT_EQ(decoder.reconstruct(), data);
  }
}

TEST(Codec, InfoDigestAccounting) {
  const CodingParams params = CodingParams::paper_defaults();
  const auto data = random_data(1u << 20, 13);  // exactly 1 MB
  FileEncoder encoder(secret(1), 1, data, params);
  EXPECT_EQ(encoder.k(), 8u);
  encoder.generate(8);
  EXPECT_EQ(encoder.info().digest_bytes(), 128u);  // paper's claim
}

TEST(Codec, SerializationRoundTrip) {
  const CodingParams params{gf::FieldId::gf2_16, 128};
  const auto data = random_data(1500, 14);
  FileEncoder encoder(secret(1), 0xABCD, data, params);
  const auto msg = encoder.generate(1)[0];
  const auto wire = msg.serialize();
  EXPECT_EQ(wire.size(), msg.wire_size());
  const auto parsed = EncodedMessage::deserialize(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->file_id, msg.file_id);
  EXPECT_EQ(parsed->message_id, msg.message_id);
  EXPECT_EQ(parsed->payload, msg.payload);
  EXPECT_EQ(parsed->digest(), msg.digest());
}

TEST(Codec, DeserializeRejectsShortBuffers) {
  const std::vector<std::byte> tiny(10);
  EXPECT_FALSE(EncodedMessage::deserialize(tiny).has_value());
}

TEST(Codec, AddDigestAllowsLateMessages) {
  const CodingParams params{gf::FieldId::gf2_32, 64};
  const auto data = random_data(2000, 15);
  FileEncoder encoder(secret(1), 1, data, params);
  const std::size_t k = encoder.k();
  const FileInfo early_info = encoder.info();  // no digests yet

  FileDecoder decoder(secret(1), early_info);
  const auto messages = encoder.generate(k);
  // Without registration they fail authentication...
  EXPECT_EQ(decoder.add(messages[0]), AddResult::bad_digest);
  // ...after fetching digests from the owner they pass.
  for (const auto& m : messages) decoder.add_digest(m.message_id, m.digest());
  for (const auto& m : messages) decoder.add(m);
  ASSERT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.reconstruct(), data);
}

}  // namespace
}  // namespace fairshare::coding
