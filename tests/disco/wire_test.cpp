// disco wire codecs: round-trips, tag discipline, and total decoders
// (every truncation of every valid frame must yield nullopt, never UB).
#include <gtest/gtest.h>

#include <vector>

#include "disco/wire.hpp"

namespace fairshare::disco::wire {
namespace {

Member member(dht::RingId id, const std::string& host, std::uint16_t port) {
  Member m;
  m.id = id;
  m.host = host;
  m.port = port;
  return m;
}

Provider provider(std::uint64_t peer, const std::string& host,
                  std::uint16_t port) {
  Provider p;
  p.peer_id = peer;
  p.host = host;
  p.port = port;
  return p;
}

TEST(DiscoWire, LookupRoundTrip) {
  const LookupRequest req{0xdeadbeefcafef00dull};
  const auto req_frame = encode(req);
  EXPECT_EQ(peek_type(req_frame), MessageType::lookup_request);
  EXPECT_EQ(decode_lookup_request(req_frame), req);

  LookupResponse resp;
  resp.done = true;
  resp.target = member(42, "127.0.0.1", 9000);
  resp.successors = {member(43, "10.0.0.1", 9001), member(44, "h", 9002)};
  const auto resp_frame = encode(resp);
  EXPECT_EQ(peek_type(resp_frame), MessageType::lookup_response);
  EXPECT_EQ(decode_lookup_response(resp_frame), resp);
}

TEST(DiscoWire, AnnounceResolveRoundTrip) {
  AnnounceRequest areq;
  areq.file_id = 777;
  areq.provider = provider(5, "127.0.0.1", 8080);
  areq.ttl_ms = 10'000;
  areq.replicate = false;
  EXPECT_EQ(decode_announce_request(encode(areq)), areq);

  AnnounceResponse aresp;
  aresp.stored = true;
  aresp.replicas = 3;
  EXPECT_EQ(decode_announce_response(encode(aresp)), aresp);

  const ResolveRequest rreq{777};
  EXPECT_EQ(decode_resolve_request(encode(rreq)), rreq);

  ResolveResponse rresp;
  rresp.providers = {provider(1, "a", 1), provider(2, "bb", 2)};
  EXPECT_EQ(decode_resolve_response(encode(rresp)), rresp);
}

TEST(DiscoWire, JoinGossipStatusRoundTrip) {
  const JoinRequest join{member(7, "127.0.0.1", 7777)};
  EXPECT_EQ(decode_join_request(encode(join)), join);

  Gossip gossip;
  gossip.reply = true;
  gossip.from = member(1, "x", 1);
  gossip.members = {member(1, "x", 1), member(2, "y", 2)};
  gossip.ledger = {{10, 1, 123.5}, {11, 2, 0.0}};
  EXPECT_EQ(decode_gossip(encode(gossip)), gossip);

  EXPECT_EQ(decode_status_request(encode(StatusRequest{})), StatusRequest{});

  StatusResponse status;
  status.self = member(9, "z", 9);
  status.members = {member(9, "z", 9)};
  status.provider_records = 4;
  status.ledger_entries = 2;
  status.gossip_rounds = 100;
  status.lookups_served = 50;
  EXPECT_EQ(decode_status_response(encode(status)), status);
}

TEST(DiscoWire, EmptyCollectionsRoundTrip) {
  LookupResponse resp;  // not done, no successors
  resp.target = member(1, "", 1);
  EXPECT_EQ(decode_lookup_response(encode(resp)), resp);
  EXPECT_EQ(decode_resolve_response(encode(ResolveResponse{})),
            ResolveResponse{});
  Gossip gossip;
  gossip.from = member(1, "x", 1);
  EXPECT_EQ(decode_gossip(encode(gossip)), gossip);
}

TEST(DiscoWire, TagsAreDisjointFromP2p) {
  // p2p::wire owns tags 1–8; every disco frame must lead with >= 64 so a
  // misrouted frame can never alias.
  for (const auto& frame :
       {encode(LookupRequest{}), encode(AnnounceRequest{}),
        encode(ResolveRequest{}), encode(JoinRequest{}), encode(Gossip{}),
        encode(StatusRequest{})}) {
    ASSERT_FALSE(frame.empty());
    EXPECT_GE(static_cast<std::uint8_t>(frame[0]), 64);
  }
}

TEST(DiscoWire, DecodersAreTotalOnTruncations) {
  Gossip gossip;
  gossip.from = member(1, "host-a", 1);
  gossip.members = {member(2, "host-b", 2), member(3, "host-c", 3)};
  gossip.ledger = {{1, 1, 1.0}};
  const auto frames = {encode(gossip), encode(LookupRequest{5}),
                       encode(AnnounceRequest{}), encode(StatusRequest{})};
  for (const auto& frame : frames) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      const std::span<const std::byte> cut(frame.data(), len);
      EXPECT_EQ(decode_gossip(cut), std::nullopt);
      EXPECT_EQ(decode_lookup_request(cut), std::nullopt);
      EXPECT_EQ(decode_announce_request(cut), std::nullopt);
      EXPECT_EQ(decode_status_request(cut), std::nullopt);
    }
  }
}

TEST(DiscoWire, TrailingGarbageIsRejected) {
  auto frame = encode(LookupRequest{5});
  frame.push_back(std::byte{0});
  EXPECT_EQ(decode_lookup_request(frame), std::nullopt);
}

TEST(DiscoWire, WrongTagIsRejected) {
  const auto frame = encode(LookupRequest{5});
  EXPECT_EQ(decode_resolve_request(frame), std::nullopt);
  EXPECT_EQ(decode_gossip(frame), std::nullopt);
}

TEST(DiscoWire, ImplausibleCountFieldIsRejectedWithoutAllocating) {
  // A hostile frame can claim 2^32-ish members in four bytes; the decoder
  // must reject it from the byte budget instead of resizing first.
  Gossip gossip;
  gossip.from = member(1, "x", 1);
  auto frame = encode(gossip);
  // The member-count field sits right after tag + reply + from; stamp it
  // with an absurd count and keep the frame short.
  ASSERT_GT(frame.size(), 4u);
  frame[frame.size() - 12] = std::byte{0xff};  // somewhere in the counts
  const auto decoded = decode_gossip(frame);
  // Either rejected outright or decoded to something consistent — but it
  // must return (no crash/OOM) and never invent members.
  if (decoded) EXPECT_LE(decoded->members.size(), frame.size());
}

TEST(DiscoWire, PeekTypeRejectsForeignTags) {
  EXPECT_EQ(peek_type({}), std::nullopt);
  const std::byte p2p_tag[] = {std::byte{3}};
  EXPECT_EQ(peek_type(p2p_tag), std::nullopt);
  const std::byte beyond[] = {std::byte{74}};
  EXPECT_EQ(peek_type(beyond), std::nullopt);
}

}  // namespace
}  // namespace fairshare::disco::wire
