// DiscoveryNode over real TCP: join/gossip convergence, owner-routed
// provider records with successor replication and TTL expiry, client
// iterative lookups, and dead-member eviction.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "disco/client.hpp"
#include "disco/node.hpp"

namespace fairshare::disco {
namespace {

using namespace std::chrono_literals;

// Quarter-point ring ids: routing geometry is deterministic, so tests can
// compute owners offline with a plain ChordRing.
constexpr dht::RingId kIds[] = {
    0x2000000000000000ull, 0x6000000000000000ull, 0xa000000000000000ull,
    0xe000000000000000ull};

bool wait_until(const std::function<bool()>& pred,
                std::chrono::milliseconds timeout = 5s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

struct Mesh {
  std::vector<std::unique_ptr<DiscoveryNode>> nodes;

  explicit Mesh(std::size_t n, std::uint32_t ttl_ms = 60'000,
                std::uint32_t reannounce_ms = 0) {
    for (std::size_t i = 0; i < n; ++i) {
      NodeConfig config;
      config.ring_id = kIds[i];
      config.provider_ttl_ms = ttl_ms;
      config.reannounce_period_ms = reannounce_ms;
      config.gossip_period_ms = 50;
      config.io_timeout_ms = 1'000;
      config.rng_seed = 1000 + i;
      if (i > 0) config.seeds = {nodes[0]->self()};
      auto node = std::make_unique<DiscoveryNode>(std::move(config));
      EXPECT_TRUE(node->start());
      nodes.push_back(std::move(node));
    }
  }

  ~Mesh() {
    for (auto& node : nodes) node->stop();
  }

  DiscoveryNode& by_id(dht::RingId id) {
    for (auto& node : nodes)
      if (node->ring_id() == id) return *node;
    ADD_FAILURE() << "no node with id " << id;
    return *nodes[0];
  }

  ClientConfig client_config() const {
    ClientConfig config;
    for (const auto& node : nodes) config.seeds.push_back(node->self());
    return config;
  }
};

TEST(DiscoveryNode, MeshConvergesThroughJoins) {
  Mesh mesh(4);
  EXPECT_TRUE(wait_until([&] {
    for (const auto& node : mesh.nodes)
      if (node->status().members.size() != 4) return false;
    return true;
  })) << "membership did not converge";
  // Every node agrees on the same member set.
  const auto reference = mesh.nodes[0]->status().members;
  for (const auto& node : mesh.nodes)
    EXPECT_EQ(node->status().members, reference);
}

TEST(DiscoveryNode, AnnounceLandsOnOwnerAndReplicates) {
  Mesh mesh(4);
  ASSERT_TRUE(wait_until([&] {
    for (const auto& node : mesh.nodes)
      if (node->status().members.size() != 4) return false;
    return true;
  }));

  const std::uint64_t file_id = 424242;
  dht::ChordRing reference;
  for (const dht::RingId id : kIds) reference.join(id);
  const dht::RingId owner = reference.successor(file_key(file_id));

  net::ServeEndpoint self;
  self.port = 9999;
  self.peer_id = 55;
  EXPECT_TRUE(mesh.nodes[0]->announce_file(file_id, self));

  DiscoveryNode& owner_node = mesh.by_id(owner);
  EXPECT_TRUE(wait_until(
      [&] { return !owner_node.stored_providers(file_id).empty(); }));
  const auto stored = owner_node.stored_providers(file_id);
  ASSERT_EQ(stored.size(), 1u);
  EXPECT_EQ(stored[0].peer_id, 55u);
  EXPECT_EQ(stored[0].port, 9999u);

  // The owner pushes replicas to its successor list; with 4 nodes and
  // list length 3, every OTHER node eventually holds a copy.
  EXPECT_TRUE(wait_until([&] {
    for (const auto& node : mesh.nodes)
      if (node->stored_providers(file_id).empty()) return false;
    return true;
  })) << "successor replication did not spread the record";
}

TEST(DiscoveryNode, ClientIterativeLookupFindsOwner) {
  Mesh mesh(4);
  ASSERT_TRUE(wait_until([&] {
    for (const auto& node : mesh.nodes)
      if (node->status().members.size() != 4) return false;
    return true;
  }));
  dht::ChordRing reference;
  for (const dht::RingId id : kIds) reference.join(id);

  // Lookups through each single seed in turn: the walk must route to the
  // ring owner regardless of entry point.
  for (const auto& seed_node : mesh.nodes) {
    ClientConfig config;
    config.seeds = {seed_node->self()};
    const Client client(config);
    for (std::uint64_t probe = 1; probe <= 8; ++probe) {
      const dht::RingId key = file_key(probe * 1000);
      const auto outcome = client.lookup(key);
      ASSERT_TRUE(outcome) << "lookup failed via seed "
                           << seed_node->ring_id();
      EXPECT_EQ(outcome->owner.id, reference.successor(key));
      EXPECT_LE(outcome->hops, 4);  // n=4: at most a walk over everyone
    }
  }
}

TEST(DiscoveryNode, ClientAnnounceResolveRoundTrip) {
  Mesh mesh(4);
  ASSERT_TRUE(wait_until([&] {
    for (const auto& node : mesh.nodes)
      if (node->status().members.size() != 4) return false;
    return true;
  }));
  const Client client(mesh.client_config());
  wire::Provider provider;
  provider.peer_id = 7;
  provider.host = "127.0.0.1";
  provider.port = 4567;
  ASSERT_TRUE(client.announce(31337, provider, /*ttl_ms=*/60'000));
  int hops = 0;
  const auto providers = client.resolve(31337, &hops);
  ASSERT_EQ(providers.size(), 1u);
  EXPECT_EQ(providers[0], provider);
  EXPECT_GE(hops, 1);

  // resolve_peers converts to download endpoints and appends no fallback
  // when the DHT answers.
  net::PeerEndpoint fallback;
  fallback.port = 1;
  const auto peers = resolve_peers(31337, mesh.client_config(), {fallback});
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0].port, 4567u);
  EXPECT_EQ(peers[0].peer_id, 7u);

  // Unknown file: the static fallback is what remains.
  const auto fell_back = resolve_peers(999999, mesh.client_config(),
                                       {fallback, fallback});
  ASSERT_EQ(fell_back.size(), 1u);  // deduplicated too
  EXPECT_EQ(fell_back[0].port, 1u);
}

TEST(DiscoveryNode, RecordsExpireByTtlWithoutRefresh) {
  Mesh mesh(2, /*ttl_ms=*/300, /*reannounce_ms=*/0);
  ASSERT_TRUE(wait_until([&] {
    return mesh.nodes[0]->status().members.size() == 2 &&
           mesh.nodes[1]->status().members.size() == 2;
  }));
  const Client client(mesh.client_config());
  wire::Provider provider;
  provider.peer_id = 1;
  provider.host = "127.0.0.1";
  provider.port = 1111;
  // Client-announced records have no origin refreshing them.
  ASSERT_TRUE(client.announce(5555, provider, /*ttl_ms=*/300));
  EXPECT_FALSE(client.resolve(5555).empty());
  EXPECT_TRUE(wait_until([&] { return client.resolve(5555).empty(); }, 3s))
      << "record outlived its TTL";
}

TEST(DiscoveryNode, OriginRefreshKeepsRecordsAlive) {
  Mesh mesh(2, /*ttl_ms=*/400, /*reannounce_ms=*/100);
  ASSERT_TRUE(wait_until([&] {
    return mesh.nodes[0]->status().members.size() == 2 &&
           mesh.nodes[1]->status().members.size() == 2;
  }));
  net::ServeEndpoint self;
  self.port = 2222;
  self.peer_id = 9;
  ASSERT_TRUE(mesh.nodes[1]->announce_file(8888, self));
  const Client client(mesh.client_config());
  // Several TTL lifetimes later the record is still resolvable because
  // the origin re-announces it.
  std::this_thread::sleep_for(1200ms);
  EXPECT_FALSE(client.resolve(8888).empty());
}

TEST(DiscoveryNode, DeadMemberIsEvictedAfterFailedDials) {
  Mesh mesh(3);
  ASSERT_TRUE(wait_until([&] {
    for (const auto& node : mesh.nodes)
      if (node->status().members.size() != 3) return false;
    return true;
  }));
  const dht::RingId dead_id = mesh.nodes[2]->ring_id();
  mesh.nodes[2]->stop();
  // Periodic gossip keeps dialing the dead node; after kDialFailureLimit
  // consecutive failures the survivors drop it.
  EXPECT_TRUE(wait_until(
      [&] {
        return mesh.nodes[0]->status().members.size() == 2 &&
               mesh.nodes[1]->status().members.size() == 2;
      },
      10s))
      << "dead member was never evicted";
  for (int i = 0; i < 2; ++i)
    for (const auto& member : mesh.nodes[i]->status().members)
      EXPECT_NE(member.id, dead_id);
}

TEST(DiscoveryNode, LedgerGossipConvergesAcrossTheMesh) {
  Mesh mesh(3);
  ASSERT_TRUE(wait_until([&] {
    for (const auto& node : mesh.nodes)
      if (node->status().members.size() != 3) return false;
    return true;
  }));
  // Node 0 publishes user 42's local contribution; every node's hook view
  // of the user's REMOTE standing must converge to it (except node 0
  // itself, whose own origin is excluded).
  mesh.nodes[0]->publish_contribution(42, 1e6);
  EXPECT_TRUE(wait_until([&] {
    return mesh.nodes[1]->swarm_contribution(42) == 1e6 &&
           mesh.nodes[2]->swarm_contribution(42) == 1e6;
  })) << "ledger gossip did not converge";
  EXPECT_DOUBLE_EQ(mesh.nodes[0]->swarm_contribution(42), 0.0);
}

}  // namespace
}  // namespace fairshare::disco
