// Federated swarm end to end: several PeerServer+DiscoveryNode pairs over
// real TCP, clients that find providers purely through DHT lookups (no
// static peer list), survival of a discovery-node kill mid-download, and
// the Eq. (2) payoff — contribution earned at server A buys allocation
// share at server B through the gossiped ledger.
//
// Runs under whichever serving backend FAIRSHARE_NET_BACKEND selects; the
// CI federation matrix job executes it under both epoll and threads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "coding/encoder.hpp"
#include "disco/client.hpp"
#include "disco/node.hpp"
#include "net/download_client.hpp"
#include "net/peer_server.hpp"
#include "sim/rng.hpp"

namespace fairshare::disco {
namespace {

using namespace std::chrono_literals;

constexpr std::uint64_t kFileId = 42;
constexpr dht::RingId kIds[] = {
    0x2000000000000000ull, 0x6000000000000000ull, 0xa000000000000000ull,
    0xe000000000000000ull};

std::vector<std::byte> blob(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

bool wait_until(const std::function<bool()>& pred,
                std::chrono::milliseconds timeout = 8s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

// A federation: n cooperating server processes' worth of state — each
// "process" is one DiscoveryNode + one PeerServer announcing into it.
struct Federation {
  std::vector<std::shared_ptr<DiscoveryNode>> nodes;
  std::vector<std::unique_ptr<net::PeerServer>> servers;
  coding::FileInfo info;
  std::vector<std::byte> data;
  coding::SecretKey secret{};

  explicit Federation(std::size_t n, double rate_kbps = 0.0,
                      std::size_t bytes = 60'000) {
    secret[0] = 99;
    data = blob(bytes, 4321);
    const coding::CodingParams params{gf::FieldId::gf2_32, 256};
    coding::FileEncoder encoder(secret, kFileId, data, params);

    for (std::size_t i = 0; i < n; ++i) {
      NodeConfig node_config;
      node_config.ring_id = kIds[i];
      node_config.origin_id = 100 + i;  // the server's peer_id
      node_config.gossip_period_ms = 50;
      node_config.reannounce_period_ms = 200;
      node_config.provider_ttl_ms = 60'000;
      node_config.io_timeout_ms = 1'000;
      node_config.rng_seed = 500 + i;
      if (i > 0) node_config.seeds = {nodes[0]->self()};
      auto node = std::make_shared<DiscoveryNode>(std::move(node_config));
      EXPECT_TRUE(node->start());
      nodes.push_back(node);

      p2p::MessageStore store;
      for (auto& m : encoder.generate(encoder.k())) store.store(std::move(m));
      net::PeerServer::Config config;
      config.peer_id = 100 + i;
      config.require_auth = false;
      config.rate_kbps = rate_kbps;
      config.rng_seed = 300 + i;
      config.discovery = node;
      auto server =
          std::make_unique<net::PeerServer>(config, std::move(store));
      EXPECT_TRUE(server->start());
      servers.push_back(std::move(server));
    }
    // message_digests covers every message generated so far, so the
    // client metadata is taken only after all stores are stocked.
    info = encoder.info();
  }

  ~Federation() {
    for (auto& server : servers) server->stop();
    for (auto& node : nodes) node->stop();
  }

  bool converged() const {
    for (const auto& node : nodes)
      if (node->status().members.size() != nodes.size()) return false;
    return true;
  }

  ClientConfig disco_config() const {
    ClientConfig config;
    for (const auto& node : nodes) config.seeds.push_back(node->self());
    return config;
  }

  /// All provider records for the file are resolvable (one per server).
  bool fully_announced() const {
    const Client client(disco_config());
    return client.resolve(kFileId).size() == servers.size();
  }
};

TEST(Federation, DownloadWithPeersResolvedPurelyViaDht) {
  Federation fed(3);
  ASSERT_TRUE(wait_until([&] { return fed.converged(); }));
  ASSERT_TRUE(wait_until([&] { return fed.fully_announced(); }))
      << "not every server's announce reached the owner";

  // No static list at all: endpoints come exclusively from DHT lookups.
  int hops = 0;
  const auto peers = resolve_peers(kFileId, fed.disco_config(), {}, &hops);
  ASSERT_EQ(peers.size(), 3u);
  EXPECT_GE(hops, 1);

  net::DownloadOptions options;
  options.user_id = 7;
  const auto report =
      net::download_file(peers, fed.secret, fed.info, options);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.data, fed.data);
}

TEST(Federation, ResolutionSurvivesDiscoveryNodeKillMidDownload) {
  Federation fed(4);
  ASSERT_TRUE(wait_until([&] { return fed.converged(); }));
  ASSERT_TRUE(wait_until([&] { return fed.fully_announced(); }));

  const auto peers = resolve_peers(kFileId, fed.disco_config(), {});
  ASSERT_EQ(peers.size(), 4u);

  // Identify the discovery node that OWNS the file's records, so the kill
  // hits the worst-case member.
  dht::ChordRing reference;
  for (const dht::RingId id : kIds) reference.join(id);
  const dht::RingId owner = reference.successor(file_key(kFileId));
  std::size_t owner_index = 0;
  for (std::size_t i = 0; i < 4; ++i)
    if (kIds[i] == owner) owner_index = i;

  // Start the download, kill the owner node while it is in flight.
  net::DownloadOptions options;
  options.user_id = 8;
  std::atomic<bool> killed{false};
  std::thread killer([&] {
    std::this_thread::sleep_for(20ms);
    fed.nodes[owner_index]->stop();
    killed = true;
  });
  const auto report =
      net::download_file(peers, fed.secret, fed.info, options);
  killer.join();
  ASSERT_TRUE(killed);
  ASSERT_TRUE(report.success) << "download died with the discovery node";
  EXPECT_EQ(report.data, fed.data);

  // Resolution must still work: walks started at surviving seeds land on
  // the dead owner's successors, which hold the replicated records (and
  // once eviction + re-announce settle, on the new owner).
  ClientConfig survivors;
  for (std::size_t i = 0; i < 4; ++i)
    if (i != owner_index) survivors.seeds.push_back(fed.nodes[i]->self());
  EXPECT_TRUE(wait_until([&] {
    return !resolve_peers(kFileId, survivors, {}).empty();
  })) << "resolution never recovered after the owner kill";
  const auto after = resolve_peers(kFileId, survivors, {});
  EXPECT_GE(after.size(), 1u);
}

TEST(Federation, ContributionGossipEarnsShareAtForeignServer) {
  // Two paced servers.  User 1 builds contribution history at server A,
  // then users 1 and 2 contend at server B, which never served either.
  // B's Eq. (2) must grant user 1 the share its gossiped swarm-wide
  // ledger predicts, within the ±15% acceptance bound.
  Federation fed(2, /*rate_kbps=*/400.0);
  ASSERT_TRUE(wait_until([&] { return fed.converged(); }));
  ASSERT_TRUE(wait_until([&] { return fed.fully_announced(); }));

  net::PeerServer& a = *fed.servers[0];
  net::PeerServer& b = *fed.servers[1];

  // Phase 1: user 1 downloads from A alone.
  net::PeerEndpoint a_endpoint;
  a_endpoint.port = a.port();
  a_endpoint.peer_id = 100;
  net::DownloadOptions phase1;
  phase1.user_id = 1;
  const auto report1 =
      net::download_file({a_endpoint}, fed.secret, fed.info, phase1);
  ASSERT_TRUE(report1.success);
  const double contributed = static_cast<double>(a.user_bytes_sent(1));
  ASSERT_GT(contributed, 0.0);

  // The gossiped ledger must carry user 1's standing to B's node (A keeps
  // publishing on its pacing tick; gossip rounds spread it).
  ASSERT_TRUE(wait_until([&] {
    return fed.nodes[1]->swarm_contribution(1) >= contributed;
  })) << "ledger gossip never reached server B's node";

  // Phase 2: users 1 and 2 download from B concurrently.  Sample B's
  // allocation while both stream.
  net::PeerEndpoint b_endpoint;
  b_endpoint.port = b.port();
  b_endpoint.peer_id = 101;
  std::atomic<bool> done1{false}, done2{false};
  std::thread t1([&] {
    net::DownloadOptions options;
    options.user_id = 1;
    const auto r = net::download_file({b_endpoint}, fed.secret, fed.info,
                                      options);
    EXPECT_TRUE(r.success);
    done1 = true;
  });
  std::thread t2([&] {
    net::DownloadOptions options;
    options.user_id = 2;
    const auto r = net::download_file({b_endpoint}, fed.secret, fed.info,
                                      options);
    EXPECT_TRUE(r.success);
    done2 = true;
  });

  // While both users stream, Eq. (2) at B splits rate proportionally to
  // its ledger: S_1 ~ epsilon + gossiped history, S_2 ~ epsilon.  Record
  // the best concurrent sample.
  double best_user1_fraction = 0.0;
  const auto sample_deadline = std::chrono::steady_clock::now() + 30s;
  while (!done1 && !done2 &&
         std::chrono::steady_clock::now() < sample_deadline) {
    double rate1 = 0.0, rate2 = 0.0;
    std::size_t streaming = 0;
    for (const auto& share : b.allocation_snapshot()) {
      if (share.user_id == 1) rate1 = share.rate_kbps;
      if (share.user_id == 2) rate2 = share.rate_kbps;
      streaming += share.active_sessions;
    }
    if (streaming >= 2 && rate1 + rate2 > 0.0)
      best_user1_fraction =
          std::max(best_user1_fraction, rate1 / (rate1 + rate2));
    std::this_thread::sleep_for(5ms);
  }
  t1.join();
  t2.join();

  // Predicted fraction from the swarm ledger: with tens of kilobytes of
  // gossiped history against a bare epsilon, user 1's share approaches
  // 1.0; the ±15% acceptance bound therefore demands >= 0.85.
  const double epsilon = 1.0;
  const double predicted =
      (epsilon + contributed) / (2 * epsilon + contributed);
  EXPECT_GT(best_user1_fraction, predicted * 0.85)
      << "user 1's gossiped contribution did not buy Eq. (2) share at B "
      << "(observed " << best_user1_fraction << ", predicted " << predicted
      << ")";
  EXPECT_LT(best_user1_fraction, std::min(1.0, predicted * 1.15));
}

}  // namespace
}  // namespace fairshare::disco
