# CLI integration test: encode a file, inspect it, decode from the message
# files, and compare byte-for-byte.  Also checks that a corrupted message
# is rejected while decode still succeeds from the remaining ones.
file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

# 100000 bytes of deterministic input.
string(REPEAT "fairshare-cli-test-data-" 4000 BODY)
file(WRITE "${WORK}/original.bin" "${BODY}")

execute_process(
  COMMAND "${CLI}" encode "${WORK}/original.bin" "${WORK}/out"
          --secret correct-horse --field 32 --m 1024 --messages 40
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "encode failed: ${out} ${err}")
endif()

execute_process(COMMAND "${CLI}" info "${WORK}/out/info.bin"
  RESULT_VARIABLE rc OUTPUT_VARIABLE info_out)
if(NOT rc EQUAL 0 OR NOT info_out MATCHES "GF\\(2\\^32\\)")
  message(FATAL_ERROR "info failed: ${info_out}")
endif()

file(GLOB messages "${WORK}/out/msg_*.bin")
execute_process(
  COMMAND "${CLI}" decode "${WORK}/out/info.bin" "${WORK}/restored.bin"
          --secret correct-horse ${messages}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "decode failed: ${out} ${err}")
endif()

file(MD5 "${WORK}/original.bin" h1)
file(MD5 "${WORK}/restored.bin" h2)
if(NOT h1 STREQUAL h2)
  message(FATAL_ERROR "round trip mismatch")
endif()

# Wrong passphrase must fail.
execute_process(
  COMMAND "${CLI}" decode "${WORK}/out/info.bin" "${WORK}/bad.bin"
          --secret wrong-pass ${messages}
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "wrong secret was accepted")
endif()

message(STATUS "cli round trip OK")
