// fairshare command-line tool: encode real files into coded messages,
// decode them back, and inspect carried metadata.
//
//   fairshare_cli encode  <input> <out-dir> --secret <passphrase>
//                 [--field 4|8|16|32] [--m N] [--messages N]
//   fairshare_cli decode  <info.bin> <out-file> --secret <passphrase>
//                 <message files...>
//   fairshare_cli info    <info.bin>
//   fairshare_cli caps    (alias: version)
//   fairshare_cli stats   <stats.json> [--pid <pid>]
//   fairshare_cli replay  <poisson|zipf|flash|diurnal|trace.dxt>
//                 [--mode sim|live|both] [--rate-kbps R] [--slot-seconds S]
//                 [--users N] [--events N] [--horizon N] [--mean-bytes B]
//                 [--file-bytes B] [--seed S] [--out report.json] [--dump]
//
// replay runs one workload trace — a synthetic generator family or an
// imported Darshan-DXT-like log — through the slotted simulator
// (sim::replay_sim), against a live PeerServer over TCP
// (net::replay_live), or both, and emits the ReplayReport JSON; in both
// mode the document wraps the two reports plus the sim-vs-live agreement
// verdict of sim::replay_agrees and the exit status reflects it.  --dump
// prints the normalized trace text instead of running anything.
//
// caps prints the build version, detected CPU features (including the
// GFNI/AVX-512 bits the wide-field kernels key on), any active
// FAIRSHARE_KERNEL_CAP tier cap, the row-kernel variant each field
// dispatched to, and the net serving backend a PeerServer would pick here
// (epoll availability included), so perf reports are attributable to a
// code path.
//
// stats pretty-prints a registry dump written by the obs JSON exporter
// (e.g. PeerServer::Config::stats_json_path).  With --pid it first sends
// SIGUSR1 to a live process and waits for the dump file to be rewritten,
// so it reads fresh numbers from a running peer.
//
// encode writes out-dir/info.bin (the wire-format FileInfo the user
// carries) and out-dir/msg_<id>.bin (one framed coded message each —
// exactly what a peer would store).  decode needs any k innovative
// message files plus the passphrase; order does not matter, corrupted
// files are rejected by their MD5 digests and reported.
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <signal.h>
#endif

#include "coding/chunked.hpp"
#include "coding/codec.hpp"
#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "crypto/sha256.hpp"
#include "disco/client.hpp"
#include "disco/node.hpp"
#include "gf/row_ops.hpp"
#include "net/event_loop.hpp"
#include "net/peer_server.hpp"
#include "net/replay_driver.hpp"
#include "p2p/wire.hpp"
#include "sim/replay.hpp"
#include "sim/workload.hpp"

#ifndef FAIRSHARE_VERSION
#define FAIRSHARE_VERSION "dev"
#endif

namespace fs = std::filesystem;
using namespace fairshare;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  fairshare_cli encode <input> <out-dir> --secret <pass>"
               " [--field 4|8|16|32] [--m N] [--messages N]\n"
               "                 [--codec dense|chunked] [--class-size N]"
               " [--overlap N] [--schedule-seed S]\n"
               "  fairshare_cli decode <info.bin> <out-file> --secret <pass>"
               " <message files...>\n"
               "  fairshare_cli info <info.bin>\n"
               "  fairshare_cli caps   (print CPU features and dispatched"
               " row kernels; alias: version)\n"
               "  fairshare_cli stats <stats.json> [--pid <pid>]"
               "   (pretty-print a registry dump; --pid: SIGUSR1 the\n"
               "                 process and wait for a fresh dump first)\n"
               "  fairshare_cli replay <poisson|zipf|flash|diurnal|trace.dxt>"
               " [--mode sim|live|both]\n"
               "                 [--rate-kbps R] [--slot-seconds S]"
               " [--users N] [--events N] [--horizon N]\n"
               "                 [--mean-bytes B] [--file-bytes B] [--seed S]"
               " [--out report.json] [--dump]\n"
               "  fairshare_cli disco join [--host H] [--port P]"
               " [--ring-id N] [--node host:port ...]\n"
               "                 (run a discovery node until SIGINT)\n"
               "  fairshare_cli disco announce <file-id> --node host:port"
               " --provider-port P\n"
               "                 [--provider-host H] [--peer-id N]"
               " [--ttl-ms N]\n"
               "  fairshare_cli disco resolve <file-id> --node host:port"
               " ...\n"
               "  fairshare_cli disco status --node host:port ...\n");
  return 2;
}

coding::SecretKey secret_from_passphrase(const std::string& pass) {
  const crypto::Sha256Digest d = crypto::Sha256::hash(pass);
  coding::SecretKey key;
  std::copy(d.begin(), d.end(), key.begin());
  return key;
}

bool read_file(const fs::path& path, std::vector<std::byte>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0);
  out.resize(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(out.data()), size);
  return in.good() || size == 0;
}

bool write_file(const fs::path& path, std::span<const std::byte> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out.good();
}

struct Options {
  std::string secret;
  unsigned field_bits = 32;
  std::size_t m = 1u << 15;
  std::size_t messages = 0;  // 0 = k (one decodable batch)
  std::string codec = "dense";
  coding::ChunkedSchedule schedule;  // encode --codec chunked geometry
  long pid = 0;              // stats: signal this process first
  // replay
  std::string mode = "sim";
  double rate_kbps = 4000.0;
  double slot_seconds = 0.05;
  std::size_t users = 3;
  std::size_t events = 24;
  std::uint64_t horizon = 32;
  std::uint64_t mean_bytes = 32 * 1024;
  std::uint64_t file_bytes = 20000;
  std::uint64_t seed = 1;
  std::string out_path;
  bool dump = false;
  // disco
  std::vector<std::string> nodes;   // --node host:port (repeatable)
  std::string host = "127.0.0.1";   // disco join bind/advertise address
  std::uint16_t port = 0;           // disco join listen port (0 = pick)
  std::uint64_t ring_id = 0;        // disco join ring position (0 = derive)
  std::uint64_t peer_id = 0;        // disco announce provider peer id
  std::string provider_host = "127.0.0.1";
  std::uint16_t provider_port = 0;  // disco announce serving port
  std::uint32_t ttl_ms = 10'000;    // disco announce record lifetime
  std::vector<std::string> positional;
};

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--secret") {
      const char* v = next("--secret");
      if (!v) return false;
      opt.secret = v;
    } else if (arg == "--field") {
      const char* v = next("--field");
      if (!v) return false;
      opt.field_bits = static_cast<unsigned>(std::stoul(v));
    } else if (arg == "--m") {
      const char* v = next("--m");
      if (!v) return false;
      opt.m = std::stoull(v);
    } else if (arg == "--messages") {
      const char* v = next("--messages");
      if (!v) return false;
      opt.messages = std::stoull(v);
    } else if (arg == "--codec") {
      const char* v = next("--codec");
      if (!v) return false;
      opt.codec = v;
    } else if (arg == "--class-size") {
      const char* v = next("--class-size");
      if (!v) return false;
      opt.schedule.class_size = static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--overlap") {
      const char* v = next("--overlap");
      if (!v) return false;
      opt.schedule.overlap = static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--schedule-seed") {
      const char* v = next("--schedule-seed");
      if (!v) return false;
      opt.schedule.seed = std::stoull(v);
    } else if (arg == "--pid") {
      const char* v = next("--pid");
      if (!v) return false;
      opt.pid = std::stol(v);
    } else if (arg == "--mode") {
      const char* v = next("--mode");
      if (!v) return false;
      opt.mode = v;
    } else if (arg == "--rate-kbps") {
      const char* v = next("--rate-kbps");
      if (!v) return false;
      opt.rate_kbps = std::stod(v);
    } else if (arg == "--slot-seconds") {
      const char* v = next("--slot-seconds");
      if (!v) return false;
      opt.slot_seconds = std::stod(v);
    } else if (arg == "--users") {
      const char* v = next("--users");
      if (!v) return false;
      opt.users = std::stoull(v);
    } else if (arg == "--events") {
      const char* v = next("--events");
      if (!v) return false;
      opt.events = std::stoull(v);
    } else if (arg == "--horizon") {
      const char* v = next("--horizon");
      if (!v) return false;
      opt.horizon = std::stoull(v);
    } else if (arg == "--mean-bytes") {
      const char* v = next("--mean-bytes");
      if (!v) return false;
      opt.mean_bytes = std::stoull(v);
    } else if (arg == "--file-bytes") {
      const char* v = next("--file-bytes");
      if (!v) return false;
      opt.file_bytes = std::stoull(v);
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      opt.seed = std::stoull(v);
    } else if (arg == "--out") {
      const char* v = next("--out");
      if (!v) return false;
      opt.out_path = v;
    } else if (arg == "--dump") {
      opt.dump = true;
    } else if (arg == "--node") {
      const char* v = next("--node");
      if (!v) return false;
      opt.nodes.push_back(v);
    } else if (arg == "--host") {
      const char* v = next("--host");
      if (!v) return false;
      opt.host = v;
    } else if (arg == "--port") {
      const char* v = next("--port");
      if (!v) return false;
      opt.port = static_cast<std::uint16_t>(std::stoul(v));
    } else if (arg == "--ring-id") {
      const char* v = next("--ring-id");
      if (!v) return false;
      opt.ring_id = std::stoull(v, nullptr, 0);
    } else if (arg == "--peer-id") {
      const char* v = next("--peer-id");
      if (!v) return false;
      opt.peer_id = std::stoull(v);
    } else if (arg == "--provider-host") {
      const char* v = next("--provider-host");
      if (!v) return false;
      opt.provider_host = v;
    } else if (arg == "--provider-port") {
      const char* v = next("--provider-port");
      if (!v) return false;
      opt.provider_port = static_cast<std::uint16_t>(std::stoul(v));
    } else if (arg == "--ttl-ms") {
      const char* v = next("--ttl-ms");
      if (!v) return false;
      opt.ttl_ms = static_cast<std::uint32_t>(std::stoul(v));
    } else {
      opt.positional.push_back(arg);
    }
  }
  return true;
}

int cmd_encode(const Options& opt) {
  if (opt.positional.size() != 2 || opt.secret.empty()) return usage();
  const fs::path input = opt.positional[0];
  const fs::path out_dir = opt.positional[1];

  gf::FieldId field;
  if (!gf::field_from_bits(opt.field_bits, field)) {
    std::fprintf(stderr, "unsupported field GF(2^%u)\n", opt.field_bits);
    return 1;
  }
  std::vector<std::byte> data;
  if (!read_file(input, data) || data.empty()) {
    std::fprintf(stderr, "cannot read %s (or file empty)\n",
                 input.string().c_str());
    return 1;
  }
  std::error_code ec;
  fs::create_directories(out_dir, ec);

  if (opt.codec != "dense" && opt.codec != "chunked") {
    std::fprintf(stderr, "unknown --codec %s\n", opt.codec.c_str());
    return 1;
  }
  if (opt.codec == "chunked" && !opt.schedule.valid()) {
    std::fprintf(stderr,
                 "invalid schedule: need --class-size >= 2 and --overlap < "
                 "--class-size\n");
    return 1;
  }

  const coding::CodingParams params{field, opt.m};
  const coding::SecretKey secret = secret_from_passphrase(opt.secret);
  // Both encoders share one deterministic interface; only construction and
  // the class geometry differ.
  std::optional<coding::FileEncoder> dense;
  std::optional<coding::chunked::Encoder> chunked;
  if (opt.codec == "chunked")
    chunked.emplace(secret, /*file_id=*/1, data, params, opt.schedule);
  else
    dense.emplace(secret, /*file_id=*/1, data, params);
  const std::size_t k = chunked ? chunked->k() : dense->k();
  const std::size_t count = opt.messages ? opt.messages : k;
  const auto messages =
      chunked ? chunked->generate(count) : dense->generate(count);
  const coding::FileInfo& info = chunked ? chunked->info() : dense->info();
  for (const auto& msg : messages) {
    const fs::path path =
        out_dir / ("msg_" + std::to_string(msg.message_id) + ".bin");
    if (!write_file(path, p2p::wire::encode(msg))) {
      std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
      return 1;
    }
  }
  const fs::path info_path = out_dir / "info.bin";
  if (!write_file(info_path, p2p::wire::encode(info))) {
    std::fprintf(stderr, "cannot write %s\n", info_path.string().c_str());
    return 1;
  }
  std::printf("encoded %zu bytes: k=%zu over %s, m=%zu, codec=%s -> %zu "
              "messages of %zu bytes + info.bin (%zu digest bytes)\n",
              data.size(), k, std::string(gf::field_name(field)).c_str(),
              opt.m, coding::to_string(info.codec), messages.size(),
              messages[0].wire_size(), info.digest_bytes());
  return 0;
}

int cmd_decode(const Options& opt) {
  if (opt.positional.size() < 3 || opt.secret.empty()) return usage();
  const fs::path info_path = opt.positional[0];
  const fs::path out_path = opt.positional[1];

  std::vector<std::byte> info_bytes;
  if (!read_file(info_path, info_bytes)) {
    std::fprintf(stderr, "cannot read %s\n", info_path.string().c_str());
    return 1;
  }
  const auto info = p2p::wire::decode_file_info(info_bytes);
  if (!info) {
    std::fprintf(stderr, "%s is not a valid info.bin\n",
                 info_path.string().c_str());
    return 1;
  }

  coding::CodecDecoder decoder(secret_from_passphrase(opt.secret), *info);
  std::size_t rejected = 0;
  for (std::size_t i = 2; i < opt.positional.size() && !decoder.complete();
       ++i) {
    std::vector<std::byte> frame;
    if (!read_file(opt.positional[i], frame)) {
      std::fprintf(stderr, "cannot read %s\n", opt.positional[i].c_str());
      return 1;
    }
    const auto msg = p2p::wire::decode_coded_message(frame);
    if (!msg) {
      std::fprintf(stderr, "skipping malformed %s\n",
                   opt.positional[i].c_str());
      ++rejected;
      continue;
    }
    if (decoder.add(*msg) == coding::AddResult::bad_digest) {
      std::fprintf(stderr, "rejecting forged/corrupt %s\n",
                   opt.positional[i].c_str());
      ++rejected;
    }
  }
  if (!decoder.complete()) {
    std::fprintf(stderr,
                 "not enough innovative messages: have rank %zu, need %zu\n",
                 decoder.rank(), decoder.k());
    return 1;
  }
  const auto data = decoder.reconstruct();
  if (crypto::Md5::hash(std::span<const std::byte>(data)) !=
      info->content_digest) {
    std::fprintf(stderr, "content digest mismatch (wrong secret?)\n");
    return 1;
  }
  if (!write_file(out_path, data)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.string().c_str());
    return 1;
  }
  std::printf("decoded %zu bytes from %zu messages (%zu rejected); content "
              "digest verified\n",
              data.size(), decoder.accepted(), rejected);
  return 0;
}

int cmd_info(const Options& opt) {
  if (opt.positional.size() != 1) return usage();
  std::vector<std::byte> info_bytes;
  if (!read_file(opt.positional[0], info_bytes)) {
    std::fprintf(stderr, "cannot read %s\n", opt.positional[0].c_str());
    return 1;
  }
  const auto info = p2p::wire::decode_file_info(info_bytes);
  if (!info) {
    std::fprintf(stderr, "not a valid info.bin\n");
    return 1;
  }
  std::printf("file id        : %llu\n",
              static_cast<unsigned long long>(info->file_id));
  std::printf("original bytes : %llu\n",
              static_cast<unsigned long long>(info->original_bytes));
  std::printf("field          : %s\n",
              std::string(gf::field_name(info->params.field)).c_str());
  std::printf("m (symbols/msg): %zu\n", info->params.m);
  std::printf("k (msgs needed): %zu\n", info->k);
  std::printf("codec          : %s\n", coding::to_string(info->codec));
  if (info->codec == coding::CodecKind::chunked) {
    const coding::chunked::ClassMap map(info->k, info->schedule);
    std::printf("class schedule : size=%u overlap=%u seed=%llu -> %zu "
                "classes\n",
                info->schedule.class_size, info->schedule.overlap,
                static_cast<unsigned long long>(info->schedule.seed),
                map.classes());
  }
  std::printf("message bytes  : %zu\n", info->params.message_bytes());
  std::printf("known digests  : %zu (%zu bytes)\n",
              info->message_digests.size(), info->digest_bytes());
  std::printf("content md5    : %s\n",
              crypto::to_hex(info->content_digest).c_str());
  return 0;
}

// ------------------------------------------------------------------ stats
//
// The obs JSON exporter deliberately writes one sample object per line, so
// this parser needs nothing beyond string search: section headers name the
// array, every '{'-led line inside it is one sample.

std::string json_str_field(const std::string& line, const char* key) {
  const std::string k = std::string("\"") + key + "\":\"";
  const auto pos = line.find(k);
  if (pos == std::string::npos) return {};
  std::string out;
  for (std::size_t i = pos + k.size(); i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      out += line[++i];
      continue;
    }
    if (line[i] == '"') break;
    out += line[i];
  }
  return out;
}

double json_num_field(const std::string& line, const char* key) {
  const std::string k = std::string("\"") + key + "\":";
  const auto pos = line.find(k);
  if (pos == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + pos + k.size(), nullptr);
}

/// "labels":{"peer":"0","user":"1"} -> {peer=0,user=1} ("" if none).
std::string pretty_labels(const std::string& line) {
  const auto pos = line.find("\"labels\":{");
  if (pos == std::string::npos) return {};
  const auto start = pos + 10;
  const auto end = line.find('}', start);
  if (end == std::string::npos || end == start) return {};
  std::string out = "{";
  for (std::size_t i = start; i < end; ++i) {
    const char c = line[i];
    if (c == '"') continue;
    out += (c == ':') ? '=' : c;
  }
  out += '}';
  return out;
}

int cmd_stats(const Options& opt) {
  if (opt.positional.size() != 1) return usage();
  const fs::path path = opt.positional[0];

  if (opt.pid > 0) {
#ifndef _WIN32
    std::error_code ec;
    const auto before = fs::exists(path, ec)
                            ? fs::last_write_time(path, ec)
                            : fs::file_time_type::min();
    if (kill(static_cast<pid_t>(opt.pid), SIGUSR1) != 0) {
      std::fprintf(stderr, "cannot signal pid %ld: %s\n", opt.pid,
                   std::strerror(errno));
      return 1;
    }
    // The server dumps from its accept loop (50ms wakeups); give it up to
    // two seconds to rewrite the file before reading a stale one.
    for (int i = 0; i < 40; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      const auto now = fs::exists(path, ec) ? fs::last_write_time(path, ec)
                                            : fs::file_time_type::min();
      if (now != before) break;
    }
#else
    std::fprintf(stderr, "--pid is not supported on this platform\n");
    return 1;
#endif
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.string().c_str());
    return 1;
  }

  enum class Section { none, counters, gauges, histograms, spans };
  Section section = Section::none;
  bool printed_header = false;
  struct SpanAgg {
    std::size_t count = 0;
    double total_ns = 0.0;
  };
  std::map<std::string, SpanAgg> spans;
  std::uint64_t spans_pushed = 0;
  std::size_t spans_sampled = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"counters\": [") != std::string::npos) {
      section = Section::counters;
      printed_header = false;
      continue;
    }
    if (line.find("\"gauges\": [") != std::string::npos) {
      section = Section::gauges;
      printed_header = false;
      continue;
    }
    if (line.find("\"histograms\": [") != std::string::npos) {
      section = Section::histograms;
      printed_header = false;
      continue;
    }
    if (line.find("\"spans\": [") != std::string::npos) {
      section = Section::spans;
      continue;
    }
    if (line.find("\"spans_pushed\":") != std::string::npos) {
      spans_pushed =
          static_cast<std::uint64_t>(json_num_field(line, "spans_pushed"));
      continue;
    }
    if (line.empty() || line[0] != '{') continue;
    if (line.find("\"name\":") == std::string::npos) continue;
    const std::string series =
        json_str_field(line, "name") + pretty_labels(line);
    switch (section) {
      case Section::counters:
      case Section::gauges: {
        if (!printed_header) {
          std::printf("== %s ==\n",
                      section == Section::counters ? "counters" : "gauges");
          printed_header = true;
        }
        std::printf("%-58s %.10g\n", series.c_str(),
                    json_num_field(line, "value"));
        break;
      }
      case Section::histograms: {
        if (!printed_header) {
          std::printf("== histograms ==\n");
          printed_header = true;
        }
        std::printf(
            "%-58s count=%.0f mean=%.0f p50=%.0f p95=%.0f p99=%.0f "
            "max=%.0f\n",
            series.c_str(), json_num_field(line, "count"),
            json_num_field(line, "mean"), json_num_field(line, "p50"),
            json_num_field(line, "p95"), json_num_field(line, "p99"),
            json_num_field(line, "max"));
        break;
      }
      case Section::spans: {
        SpanAgg& agg = spans[json_str_field(line, "name")];
        ++agg.count;
        agg.total_ns += json_num_field(line, "duration_ns");
        ++spans_sampled;
        break;
      }
      case Section::none:
        break;
    }
  }
  if (!spans.empty() || spans_pushed > 0) {
    std::printf("== spans == (%zu sampled of %llu pushed)\n", spans_sampled,
                static_cast<unsigned long long>(spans_pushed));
    for (const auto& [name, agg] : spans)
      std::printf("%-58s count=%zu total_ms=%.3f\n", name.c_str(), agg.count,
                  agg.total_ns / 1e6);
  }
  return 0;
}

// ----------------------------------------------------------------- replay

std::optional<sim::WorkloadTrace> replay_trace(const Options& opt,
                                               const std::string& source) {
  if (source == "poisson") {
    sim::PoissonConfig config;
    config.users = opt.users;
    config.horizon = opt.horizon;
    config.mean_bytes = opt.mean_bytes;
    config.seed = opt.seed;
    return sim::poisson_trace(config);
  }
  if (source == "zipf") {
    sim::ZipfConfig config;
    config.users = opt.users;
    config.horizon = opt.horizon;
    config.events = opt.events;
    config.mean_bytes = opt.mean_bytes;
    config.seed = opt.seed;
    return sim::zipf_trace(config);
  }
  if (source == "flash") {
    sim::FlashCrowdConfig config;
    config.users = opt.users;
    config.horizon = opt.horizon;
    config.mean_bytes = opt.mean_bytes;
    config.seed = opt.seed;
    return sim::flash_crowd_trace(config);
  }
  if (source == "diurnal") {
    sim::DiurnalConfig config;
    config.users = opt.users;
    config.horizon = opt.horizon;
    config.mean_bytes = opt.mean_bytes;
    config.seed = opt.seed;
    return sim::diurnal_trace(config);
  }
  std::string error;
  sim::DxtStats stats;
  auto trace =
      sim::load_dxt_file(source, opt.slot_seconds, &error, &stats);
  if (!trace) {
    std::fprintf(stderr, "cannot import %s: %s\n", source.c_str(),
                 error.c_str());
    return std::nullopt;
  }
  std::fprintf(stderr,
               "imported %zu events from %s (%zu zero-length dropped%s)\n",
               stats.events, source.c_str(), stats.skipped_zero,
               stats.reordered ? ", input reordered" : "");
  return trace;
}

int cmd_replay(const Options& opt) {
  if (opt.positional.size() != 1) return usage();
  const auto trace = replay_trace(opt, opt.positional[0]);
  if (!trace) return 1;
  if (opt.dump) {
    std::fputs(sim::to_text(*trace).c_str(), stdout);
    return 0;
  }
  if (opt.mode != "sim" && opt.mode != "live" && opt.mode != "both") {
    std::fprintf(stderr, "unknown --mode %s\n", opt.mode.c_str());
    return usage();
  }

  // 1 KiB coded messages keep per-file decode cost trivial at replay sizes.
  const coding::CodingParams params{gf::FieldId::gf2_32, 256};
  coding::FileInfo shape;
  shape.original_bytes = opt.file_bytes;
  shape.params = params;
  shape.k = coding::chunks_for_bytes(opt.file_bytes, params);
  const double overhead = net::wire_overhead_factor(shape);

  std::optional<sim::ReplayReport> sim_report;
  std::optional<sim::ReplayReport> live_report;
  if (opt.mode == "sim" || opt.mode == "both") {
    sim::SimReplayConfig config;
    config.rate_kbps = opt.rate_kbps;
    config.slot_seconds = opt.slot_seconds;
    config.quantize_bytes = opt.file_bytes;
    config.wire_overhead = overhead;
    sim_report = sim::replay_sim(*trace, config);
  }
  if (opt.mode == "live" || opt.mode == "both") {
    net::LiveReplayConfig config;
    config.rate_kbps = opt.rate_kbps;
    config.slot_seconds = opt.slot_seconds;
    config.rng_seed = opt.seed;
    live_report = net::replay_live(*trace, opt.file_bytes, params, config);
  }

  std::string body;
  int status = 0;
  if (opt.mode == "both") {
    std::string why;
    const bool agrees = sim::replay_agrees(*sim_report, *live_report,
                                           sim::AgreementOptions{}, &why);
    std::ostringstream doc;
    doc << "{\n\"sim\": " << sim::to_json(*sim_report);
    doc << ",\n\"live\": " << sim::to_json(*live_report);
    doc << ",\n\"agrees\": " << (agrees ? "true" : "false");
    doc << ",\n\"why\": \"" << why << "\"\n}\n";
    body = doc.str();
    if (!agrees) {
      std::fprintf(stderr, "sim and live disagree: %s\n", why.c_str());
      status = 1;
    }
  } else {
    body = sim::to_json(sim_report ? *sim_report : *live_report);
  }

  if (opt.out_path.empty()) {
    std::fputs(body.c_str(), stdout);
  } else {
    std::ofstream out(opt.out_path, std::ios::trunc);
    out << body;
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", opt.out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", opt.out_path.c_str());
  }
  return status;
}

std::optional<disco::wire::Member> parse_member(const std::string& text) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size())
    return std::nullopt;
  disco::wire::Member member;
  member.host = text.substr(0, colon);
  try {
    member.port =
        static_cast<std::uint16_t>(std::stoul(text.substr(colon + 1)));
  } catch (const std::exception&) {
    return std::nullopt;
  }
  return member.port != 0 ? std::optional(member) : std::nullopt;
}

std::atomic<bool> g_disco_stop{false};

// disco join: run a discovery node in the foreground.  It keeps serving
// lookups/announces/gossip until SIGINT/SIGTERM; a federated deployment
// runs one of these beside each serving process and points the server's
// Config::discovery hook at it (in-process) or at this node's port.
int cmd_disco_join(const Options& opt,
                   std::vector<disco::wire::Member> seeds) {
  disco::NodeConfig config;
  config.host = opt.host;
  config.port = opt.port;
  config.ring_id = opt.ring_id;
  config.provider_ttl_ms = opt.ttl_ms;
  config.seeds = std::move(seeds);
  disco::DiscoveryNode node(std::move(config));
  if (!node.start()) {
    std::fprintf(stderr, "cannot bind %s:%u\n", opt.host.c_str(), opt.port);
    return 1;
  }
  std::signal(SIGINT, [](int) { g_disco_stop = true; });
  std::signal(SIGTERM, [](int) { g_disco_stop = true; });
  std::printf("disco node %016llx serving on %s:%u (ctrl-c to stop)\n",
              static_cast<unsigned long long>(node.ring_id()),
              opt.host.c_str(), node.port());
  while (!g_disco_stop)
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  node.stop();
  const auto status = node.status();
  std::printf("stopped: %zu members, %u records, %llu gossip rounds, "
              "%llu lookups served\n",
              status.members.size(), status.provider_records,
              static_cast<unsigned long long>(status.gossip_rounds),
              static_cast<unsigned long long>(status.lookups_served));
  return 0;
}

int cmd_disco(const Options& opt) {
  if (opt.positional.empty()) return usage();
  const std::string& sub = opt.positional[0];

  std::vector<disco::wire::Member> seeds;
  for (const std::string& text : opt.nodes) {
    const auto member = parse_member(text);
    if (!member) {
      std::fprintf(stderr, "bad --node %s (want host:port)\n", text.c_str());
      return 2;
    }
    seeds.push_back(*member);
  }

  if (sub == "join") return cmd_disco_join(opt, std::move(seeds));

  if (seeds.empty()) {
    std::fprintf(stderr, "disco %s needs at least one --node host:port\n",
                 sub.c_str());
    return 2;
  }
  disco::ClientConfig client_config;
  client_config.seeds = seeds;
  const disco::Client client(client_config);

  if (sub == "announce") {
    if (opt.positional.size() != 2 || opt.provider_port == 0) return usage();
    const std::uint64_t file_id = std::stoull(opt.positional[1]);
    disco::wire::Provider provider;
    provider.peer_id = opt.peer_id;
    provider.host = opt.provider_host;
    provider.port = opt.provider_port;
    if (!client.announce(file_id, provider, opt.ttl_ms)) {
      std::fprintf(stderr, "announce failed: no owner reachable\n");
      return 1;
    }
    std::printf("announced file %llu -> %s:%u (peer %llu, ttl %u ms)\n",
                static_cast<unsigned long long>(file_id),
                provider.host.c_str(), provider.port,
                static_cast<unsigned long long>(provider.peer_id),
                opt.ttl_ms);
    return 0;
  }

  if (sub == "resolve") {
    if (opt.positional.size() != 2) return usage();
    const std::uint64_t file_id = std::stoull(opt.positional[1]);
    int hops = 0;
    const auto providers = client.resolve(file_id, &hops);
    if (providers.empty()) {
      std::fprintf(stderr, "no providers for file %llu (%d hops)\n",
                   static_cast<unsigned long long>(file_id), hops);
      return 1;
    }
    for (const auto& provider : providers)
      std::printf("%s:%u peer=%llu\n", provider.host.c_str(), provider.port,
                  static_cast<unsigned long long>(provider.peer_id));
    std::printf("%zu provider(s), %d routing hop(s)\n", providers.size(),
                hops);
    return 0;
  }

  if (sub == "status") {
    int exit_code = 0;
    for (const auto& seed : seeds) {
      const auto status = client.status(seed);
      if (!status) {
        std::fprintf(stderr, "%s:%u unreachable\n", seed.host.c_str(),
                     seed.port);
        exit_code = 1;
        continue;
      }
      std::printf("node %016llx at %s:%u\n",
                  static_cast<unsigned long long>(status->self.id),
                  status->self.host.c_str(), status->self.port);
      std::printf("  members         : %zu\n", status->members.size());
      for (const auto& member : status->members)
        std::printf("    %016llx %s:%u\n",
                    static_cast<unsigned long long>(member.id),
                    member.host.c_str(), member.port);
      std::printf("  provider records: %u\n", status->provider_records);
      std::printf("  ledger entries  : %u\n", status->ledger_entries);
      std::printf("  gossip rounds   : %llu\n",
                  static_cast<unsigned long long>(status->gossip_rounds));
      std::printf("  lookups served  : %llu\n",
                  static_cast<unsigned long long>(status->lookups_served));
    }
    return exit_code;
  }

  return usage();
}

int cmd_caps() {
  const gf::CpuFeatures feat = gf::cpu_features();
  std::printf("fairshare %s\n", FAIRSHARE_VERSION);
  std::printf("cpu features   : ssse3=%s avx2=%s gfni=%s avx512f=%s "
              "avx512bw=%s\n",
              feat.ssse3 ? "yes" : "no", feat.avx2 ? "yes" : "no",
              feat.gfni ? "yes" : "no", feat.avx512f ? "yes" : "no",
              feat.avx512bw ? "yes" : "no");
  std::printf("kernel tier cap: %s\n",
              gf::kernel_tier_cap() ? gf::kernel_tier_cap()
                                    : "none (FAIRSHARE_KERNEL_CAP unset)");
  std::printf("scalar forced  : %s\n", gf::scalar_kernels_forced()
                                           ? "yes (env/CMake pin)"
                                           : "no");
  std::printf("row kernels    :\n");
  for (const gf::FieldId id : gf::kAllFields)
    std::printf("  %-9s -> %s\n", std::string(gf::field_name(id)).c_str(),
                gf::field_view(id).kernel);
  std::printf("epoll          : %s\n",
              net::epoll_available() ? "available" : "unavailable");
  std::printf("net backend    : %s (FAIRSHARE_NET_BACKEND overrides)\n",
              net::to_string(net::default_net_backend()));
  std::printf("codecs         : dense chunked (chunked default geometry: "
              "class-size=%u overlap=%u)\n",
              coding::ChunkedSchedule{}.class_size,
              coding::ChunkedSchedule{}.overlap);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Options opt;
  if (!parse(argc, argv, opt)) return 2;
  const std::string cmd = argv[1];
  if (cmd == "encode") return cmd_encode(opt);
  if (cmd == "decode") return cmd_decode(opt);
  if (cmd == "info") return cmd_info(opt);
  if (cmd == "caps" || cmd == "version") return cmd_caps();
  if (cmd == "stats") return cmd_stats(opt);
  if (cmd == "replay") return cmd_replay(opt);
  if (cmd == "disco") return cmd_disco(opt);
  return usage();
}
