#!/usr/bin/env python3
"""Condense google-benchmark JSON output into the committed perf baseline.

Usage:
  bench_to_json.py NATIVE.json [--scalar SCALAR.json] [--merge NAME=RUN.json ...] [-o BENCH_kernels.json]
  bench_to_json.py NATIVE.json [--scalar SCALAR.json] [--merge NAME=RUN.json ...] --compare BENCH_kernels.json

NATIVE.json is a --benchmark_out=json run with the host's dispatched
kernels; SCALAR.json is the same binary re-run under
FAIRSHARE_FORCE_SCALAR_KERNELS=1 (the in-process `simd` axis covers the
row kernels, but BM_DecodePipeline exercises the process-wide dispatch and
needs the second run).  The output strips volatile context (dates, load
average, paths) so diffs against the committed baseline show perf drift,
not noise, and records per-benchmark speedups so regressions are a single
number to eyeball.

Typically invoked via the `bench_baseline` CMake target, which writes
BENCH_kernels.json at the repo root.

With --compare the tool checks a fresh run against the committed baseline
instead of writing one: it prints a per-benchmark delta table (new vs
baseline real_time_ns, matched by name within each run) and exits nonzero
when any benchmark regresses by more than --threshold percent (default
25) or when any baseline benchmark is missing from the fresh run.  CI
runs this as a non-blocking step; locally it answers "did my change slow
the kernels down?" in one command.

Extra benchmark binaries ride along via repeatable --merge NAME=RUN.json
options: each run is condensed into its own `runs.NAME` section of the
baseline (bench_baseline passes trace_replay=bench_trace_replay.json for
the ext_trace_replay suite), and with --compare each is checked against
the matching baseline section — a section the committed baseline does not
have yet is reported and skipped, so introducing a new suite does not fail
CI before its first baseline refresh.

Baselines are only written from release builds of the benchmark binary
(the binary self-reports via the fairshare_build_type context);
--allow-debug overrides for local experiments.
"""

import argparse
import json
import sys


def load_run(path):
    with open(path) as fh:
        return json.load(fh)


def condense_entries(doc):
    out = []
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        entry = {
            "name": b["name"],
            "iterations": b.get("iterations"),
            "real_time_ns": round(to_ns(b.get("real_time", 0.0),
                                        b.get("time_unit", "ns")), 1),
        }
        if "bytes_per_second" in b:
            entry["bytes_per_second"] = round(b["bytes_per_second"], 1)
        if b.get("label"):
            entry["kernel"] = b["label"]
        # Selected user counters worth committing: problem size (k), the
        # chunked-decode suite's class count / messages consumed / reception
        # overhead (the last is an acceptance number in its own right), and
        # the federation suite's scale axes — server count, session pool,
        # sessions per core, and the DHT resolve hop count.
        for counter in ("k", "classes", "consumed", "overhead_pct",
                        "servers", "sessions", "sessions_per_core",
                        "resolve_hops", "downloads_failed"):
            if counter in b:
                entry[counter] = round(b[counter], 3)
        if b.get("error_occurred"):
            entry["error"] = b.get("error_message", "unknown")
        out.append(entry)
    out.sort(key=lambda e: e["name"])
    return out


def to_ns(value, unit):
    return value * {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)


def host_context(doc):
    ctx = doc.get("context", {})
    # `fairshare_build_type` is the benchmark binary's own optimisation
    # state (AddCustomContext in microbench_kernels.cpp);
    # `library_build_type` only describes how libbenchmark was compiled
    # (Debian ships a debug one) and is kept as a fallback for old runs.
    return {
        "num_cpus": ctx.get("num_cpus"),
        "mhz_per_cpu": ctx.get("mhz_per_cpu"),
        "cpu_scaling_enabled": ctx.get("cpu_scaling_enabled"),
        "build_type": ctx.get("fairshare_build_type",
                              ctx.get("library_build_type")),
    }


def by_name(entries):
    return {e["name"]: e for e in entries}


def speedups(native, scalar):
    """SIMD-over-scalar ratios: in-run for the simd axis, cross-run for the
    dispatched pipeline."""
    out = {}
    native_by = by_name(native)
    for name, entry in sorted(native_by.items()):
        if "/simd:1" in name:
            base = native_by.get(name.replace("/simd:1", "/simd:0"))
            if base and entry["real_time_ns"] > 0:
                out[name] = round(base["real_time_ns"] / entry["real_time_ns"], 2)
    if scalar:
        scalar_by = by_name(scalar)
        for name, entry in sorted(native_by.items()):
            if name.startswith("BM_DecodePipeline"):
                base = scalar_by.get(name)
                if base and entry["real_time_ns"] > 0:
                    out[name] = round(base["real_time_ns"] / entry["real_time_ns"], 2)
    return out


def compare_runs(run_name, fresh, baseline_entries, threshold_pct):
    """Print per-benchmark deltas of `fresh` against the baseline run and
    return (regressed, missing): names beyond the threshold and baseline
    names absent from the fresh run."""
    regressed = []
    base_by = by_name(baseline_entries)
    print("%-44s %14s %14s %9s" % (run_name, "baseline_ns", "current_ns",
                                   "delta"))
    for entry in fresh:
        base = base_by.get(entry["name"])
        if base is None or not base.get("real_time_ns"):
            print("%-44s %14s %14.1f %9s"
                  % (entry["name"], "-", entry["real_time_ns"], "new"))
            continue
        delta_pct = (entry["real_time_ns"] / base["real_time_ns"] - 1.0) * 100
        flag = ""
        if delta_pct > threshold_pct:
            flag = "  << REGRESSION"
            regressed.append(entry["name"])
        print("%-44s %14.1f %14.1f %+8.1f%%%s"
              % (entry["name"], base["real_time_ns"], entry["real_time_ns"],
                 delta_pct, flag))
    missing = sorted(set(base_by) - {e["name"] for e in fresh})
    for name in missing:
        print("%-44s %14.1f %14s %9s"
              % (name, base_by[name]["real_time_ns"], "-", "missing"))
    return regressed, missing


def run_compare(args, native, scalar, merged):
    baseline = load_run(args.compare)
    runs = baseline.get("runs", {})
    if not runs.get("native"):
        sys.exit("no runs.native entries in baseline " + args.compare)
    regressed, missing = compare_runs("native", native, runs["native"],
                                      args.threshold)
    if scalar and runs.get("forced_scalar"):
        print()
        more_regressed, more_missing = compare_runs(
            "forced_scalar", scalar, runs["forced_scalar"], args.threshold)
        regressed += more_regressed
        missing += more_missing
    for name, entries in merged.items():
        print()
        if not runs.get(name):
            # First run of a new suite: nothing committed to compare with.
            print("note: baseline %s has no runs.%s section — skipping "
                  "(refresh the baseline to start gating it)"
                  % (args.compare, name))
            continue
        threshold = args.section_thresholds.get(name, args.threshold)
        more_regressed, more_missing = compare_runs(
            name, entries, runs[name], threshold)
        regressed += more_regressed
        missing += more_missing
    print()
    # A baseline benchmark that the fresh run never produced is a failure,
    # not a footnote: a renamed or silently-dropped benchmark would
    # otherwise make the regression gate vacuously green.
    failed = False
    if regressed:
        print("FAIL: %d benchmark(s) regressed past their threshold vs %s:"
              % (len(regressed), args.compare))
        for name in regressed:
            print("  " + name)
        failed = True
    if missing:
        print("FAIL: %d baseline benchmark(s) missing from this run "
              "(renamed? filtered out?):" % len(missing))
        for name in missing:
            print("  " + name)
        failed = True
    if failed:
        sys.exit(1)
    print("OK: no benchmark regressed past its threshold (default %.0f%%) "
          "vs %s" % (args.threshold, args.compare))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("native", help="benchmark JSON from the dispatched run")
    ap.add_argument("--scalar", help="benchmark JSON from the "
                    "FAIRSHARE_FORCE_SCALAR_KERNELS=1 run")
    ap.add_argument("--merge", action="append", default=[],
                    metavar="NAME=RUN.json",
                    help="condense an extra benchmark run into runs.NAME "
                    "(repeatable); with --compare, check it against the "
                    "baseline's runs.NAME section")
    ap.add_argument("-o", "--output", default="BENCH_kernels.json")
    ap.add_argument("--compare", metavar="BASELINE.json",
                    help="compare against a committed baseline instead of "
                    "writing one; exit nonzero on regression")
    ap.add_argument("--threshold", type=float, default=25.0,
                    help="regression threshold in percent for --compare "
                    "(default: %(default)s)")
    ap.add_argument("--section-threshold", action="append", default=[],
                    metavar="NAME=PCT",
                    help="override --threshold for one merged runs.NAME "
                    "section (repeatable); single-iteration end-to-end "
                    "suites are noisier than the kernel microbenches and "
                    "warrant a looser gate")
    ap.add_argument("--allow-debug", action="store_true",
                    help="write a baseline even from a non-release build "
                    "(normally refused: debug timings are meaningless as a "
                    "committed reference)")
    args = ap.parse_args()

    args.section_thresholds = {}
    for spec in args.section_threshold:
        name, sep, pct = spec.partition("=")
        if not sep or not name:
            sys.exit("--section-threshold expects NAME=PCT, got %r" % spec)
        try:
            args.section_thresholds[name] = float(pct)
        except ValueError:
            sys.exit("--section-threshold expects a numeric PCT, got %r"
                     % spec)

    native_doc = load_run(args.native)
    scalar_doc = load_run(args.scalar) if args.scalar else None

    native = condense_entries(native_doc)
    scalar = condense_entries(scalar_doc) if scalar_doc else []
    if not native:
        sys.exit("no benchmark entries in " + args.native)

    merged = {}
    for spec in args.merge:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            sys.exit("--merge expects NAME=RUN.json, got %r" % spec)
        if name in ("native", "forced_scalar") or name in merged:
            sys.exit("--merge run name %r collides with an existing run"
                     % name)
        entries = condense_entries(load_run(path))
        if not entries:
            sys.exit("no benchmark entries in " + path)
        merged[name] = entries

    if args.compare:
        run_compare(args, native, scalar, merged)
        return

    host = host_context(native_doc)
    if host.get("build_type") != "release" and not args.allow_debug:
        sys.exit("refusing to write a baseline from a %r build of the "
                 "benchmark binary — rebuild with CMAKE_BUILD_TYPE=Release "
                 "(or pass --allow-debug to override)"
                 % host.get("build_type"))

    baseline = {
        "schema": 1,
        "generated_by": "tools/bench_to_json.py (cmake --build build --target bench_baseline)",
        "host": host,
        "speedup_simd_over_scalar": speedups(native, scalar),
        "runs": {"native": native},
    }
    if scalar:
        baseline["runs"]["forced_scalar"] = scalar
    baseline["runs"].update(merged)

    with open(args.output, "w") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print("wrote %s (%d native entries, %d forced-scalar entries)"
          % (args.output, len(native), len(scalar)))


if __name__ == "__main__":
    main()
